/**
 * @file
 * BENCH_8: traversal-as-a-service under sustained traffic.
 *
 * Stands up a persistent TraversalService (one long-lived TtaDevice,
 * three tenants: B-Tree lookups, radius searches, rays) and drives it
 * with the deterministic closed/open-loop traffic generators: Poisson,
 * bursty (2-state MMPP) and closed-loop arrivals, millions of queries
 * per scenario. Reports sustained throughput plus p50/p99/p999 latency
 * in simulated cycles and microseconds (at Config::coreClockMhz),
 * alongside host wall-clock.
 *
 * Flags (on top of the shared bench flags in bench_common.hh):
 *   --queries=N            arrivals per scenario (default 1,000,000)
 *   --bench=SUBSTR         run only scenarios whose name contains SUBSTR
 *   --max-batch=N          admission policy: dispatch threshold (256)
 *   --max-wait=N           admission policy: deadline in cycles (50000)
 *   --mean-gap=N           open-loop mean inter-arrival gap (cycles)
 *   --check-determinism    re-run every scenario under the threaded
 *                          kernel (2 sim threads) and require the batch
 *                          log + latency histograms to be bit-identical;
 *                          exits 2 on divergence (bench_speed codes)
 *
 * JSON records (--json=FILE, one line per scenario) carry the service
 * scalars/counters plus derived values: throughput_qpmc (completed
 * queries per million simulated cycles), lat_p50/p99/p999_cycles and
 * _us, wait_p99_cycles, batches, expired_dispatches.
 */

#include "bench_common.hh"

#include "service/service.hh"
#include "sim/stats.hh"

using namespace bench;
using namespace ::tta::service;

namespace {

struct ScenarioSpec
{
    const char *name;
    ArrivalProcess process;
    bool mix;              //!< all three tenants vs B-Tree only
    double cancelFraction; //!< impatient clients
};

const ScenarioSpec kScenarios[] = {
    {"poisson/btree", ArrivalProcess::Poisson, false, 0.0},
    {"poisson/mix", ArrivalProcess::Poisson, true, 0.0},
    {"bursty/mix", ArrivalProcess::Bursty, true, 0.0},
    {"bursty/cancel", ArrivalProcess::Bursty, true, 0.02},
    {"closed/mix", ArrivalProcess::ClosedLoop, true, 0.0},
};

struct ServiceArgs
{
    uint64_t maxBatch = 256;
    uint64_t maxWait = 50000;
    uint64_t meanGap = 0; //!< 0 = auto
    std::string filter;
    bool checkDeterminism = false;
};

/** Oracle string for the determinism cross-check: batch composition,
 *  completion order and every latency histogram, bit-for-bit. */
std::string
oracleString(const ServiceReport &rep)
{
    std::string s = rep.batchLog;
    s += "total:" + rep.latency.dumpString();
    for (const auto &tr : rep.tenants) {
        s += tr.name + ":" + tr.latency.dumpString();
        s += tr.name + ".wait:" + tr.queueWait.dumpString();
    }
    return s;
}

ServiceReport
runScenario(const ScenarioSpec &spec, const Args &args,
            const ServiceArgs &sargs, const sim::Config &cfg,
            sim::StatRegistry &stats)
{
    ServicePolicy policy;
    policy.maxBatch = static_cast<uint32_t>(sargs.maxBatch);
    policy.maxWaitCycles = sargs.maxWait;

    TraversalService svc(cfg, stats, policy);
    svc.addTenant(std::make_unique<BTreeTenant>(
        "btree", args.keys / 5, /*pool=*/8192, args.seed));
    if (spec.mix) {
        svc.addTenant(std::make_unique<RadiusTenant>(
            "radius", args.points / 4, /*pool=*/2048, 1.0f, args.seed));
        svc.addTenant(std::make_unique<RayTenant>(
            "rays", /*pool=*/1024, args.seed));
    }

    TrafficConfig tc;
    tc.process = spec.process;
    tc.totalQueries = args.queries;
    tc.cancelFraction = spec.cancelFraction;
    tc.cancelAfterMean = static_cast<double>(sargs.maxWait) / 2;
    // Query mix skewed toward the cheap tenant so the aggregate rate
    // keeps the device saturated without the expensive tenants
    // dominating the makespan.
    if (spec.mix)
        tc.tenantWeights = {0.90, 0.07, 0.03};
    // Auto gap: keep the open-loop offered load near device capacity
    // (~a few tens of cycles per B-Tree query in a full batch).
    tc.meanGapCycles = sargs.meanGap
                           ? static_cast<double>(sargs.meanGap)
                           : (spec.mix ? 180.0 : 8.0);
    tc.clients = 512;
    tc.thinkCycles = 30000.0;

    TrafficGen gen(tc, svc.numTenants(), args.seed ^ 0xbadc0ffeull);
    return svc.run(gen);
}

} // namespace

int
main(int argc, char **argv)
{
    // Pre-scan service-specific flags; Args::parse warns on unknowns,
    // so strip ours first.
    ServiceArgs sargs;
    std::vector<char *> passthrough{argv[0]};
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto val = [&](const std::string &prefix) {
            return std::strtoull(a.c_str() + prefix.size(), nullptr, 10);
        };
        if (a.rfind("--max-batch=", 0) == 0)
            sargs.maxBatch = val("--max-batch=");
        else if (a.rfind("--max-wait=", 0) == 0)
            sargs.maxWait = val("--max-wait=");
        else if (a.rfind("--mean-gap=", 0) == 0)
            sargs.meanGap = val("--mean-gap=");
        else if (a.rfind("--bench=", 0) == 0)
            sargs.filter = a.substr(std::strlen("--bench="));
        else if (a == "--check-determinism")
            sargs.checkDeterminism = true;
        else
            passthrough.push_back(argv[i]);
    }
    Args args = Args::parse(static_cast<int>(passthrough.size()),
                            passthrough.data());
    if (args.queries == 16384)
        args.queries = 1000000; // service default: a million arrivals

    printHeader("BENCH_8", "traversal-as-a-service latency/throughput",
                args);
    std::printf("  policy: max-batch=%llu max-wait=%llu cycles\n",
                static_cast<unsigned long long>(sargs.maxBatch),
                static_cast<unsigned long long>(sargs.maxWait));

    std::vector<const ScenarioSpec *> selected;
    for (const auto &s : kScenarios)
        if (sargs.filter.empty() ||
            std::string(s.name).find(sargs.filter) != std::string::npos)
            selected.push_back(&s);
    if (selected.empty()) {
        std::fprintf(stderr, "no scenario matches --bench=%s\n",
                     sargs.filter.c_str());
        return 64;
    }

    // One runner job per scenario: private registries, deterministic
    // result order, JSON records for free.
    std::vector<ServiceReport> reports(selected.size());
    std::vector<sim::Job> jobs;
    for (size_t i = 0; i < selected.size(); ++i) {
        const ScenarioSpec &spec = *selected[i];
        sim::Job job;
        job.name = spec.name;
        job.config = modeConfig(sim::AccelMode::Tta);
        job.seed = args.seed;
        job.fn = [&, i, &spec = *selected[i]](const sim::Config &cfg,
                                              sim::StatRegistry &stats,
                                              sim::RunRecord &rec) {
            ServiceReport rep = runScenario(spec, args, sargs, cfg, stats);
            rec.cycles = rep.makespan;
            double mhz = cfg.coreClockMhz;
            rec.values["throughput_qpmc"] = rep.throughputQpmc();
            rec.values["lat_p50_cycles"] =
                static_cast<double>(rep.latency.percentile(50));
            rec.values["lat_p99_cycles"] =
                static_cast<double>(rep.latency.percentile(99));
            rec.values["lat_p999_cycles"] =
                static_cast<double>(rep.latency.percentile(99.9));
            rec.values["lat_p50_us"] =
                cyclesToUs(rep.latency.percentile(50), mhz);
            rec.values["lat_p99_us"] =
                cyclesToUs(rep.latency.percentile(99), mhz);
            rec.values["lat_p999_us"] =
                cyclesToUs(rep.latency.percentile(99.9), mhz);
            rec.values["batches"] = static_cast<double>(rep.batches);
            rec.values["expired_dispatches"] =
                static_cast<double>(rep.expiredDispatches);
            rec.values["completed"] =
                static_cast<double>(rep.completed);
            rec.values["canceled"] = static_cast<double>(rep.canceled);
            reports[i] = rep;
        };
        jobs.push_back(std::move(job));
    }

    sim::ExperimentRunner runner(static_cast<unsigned>(args.jobs));
    std::vector<sim::RunRecord> records = runner.run(jobs);
    for (const auto &rec : records) {
        if (rec.failed()) {
            std::fprintf(stderr, "scenario '%s' failed: %s\n",
                         rec.name.c_str(), rec.error.c_str());
            return 1;
        }
    }

    if (!args.json.empty()) {
        std::ofstream file;
        std::ostream *os = &std::cout;
        if (args.json != "-") {
            file.open(args.json, std::ios::app);
            if (!file) {
                std::fprintf(stderr, "cannot open %s\n",
                             args.json.c_str());
                return 1;
            }
            os = &file;
        }
        for (const auto &rec : records) {
            rec.writeJson(*os, args.jsonTiming != 0);
            *os << "\n";
        }
    }

    std::printf("\n%-15s %9s %7s %8s %9s %9s %9s %8s %8s\n", "scenario",
                "queries", "batches", "qpmc", "p50(us)", "p99(us)",
                "p999(us)", "util", "wall(s)");
    for (size_t i = 0; i < selected.size(); ++i) {
        const ServiceReport &rep = reports[i];
        double mhz = jobs[i].config.coreClockMhz;
        double util = rep.makespan ? 100.0 *
                                         static_cast<double>(
                                             rep.deviceBusy) /
                                         rep.makespan
                                   : 0.0;
        std::printf("%-15s %9llu %7llu %8.1f %9.1f %9.1f %9.1f %7.1f%% "
                    "%8.2f\n",
                    selected[i]->name,
                    static_cast<unsigned long long>(rep.completed),
                    static_cast<unsigned long long>(rep.batches),
                    rep.throughputQpmc(),
                    cyclesToUs(rep.latency.percentile(50), mhz),
                    cyclesToUs(rep.latency.percentile(99), mhz),
                    cyclesToUs(rep.latency.percentile(99.9), mhz), util,
                    records[i].wallSeconds);
    }
    std::printf("(qpmc = completed queries per million simulated cycles; "
                "util = device busy fraction)\n");

    if (sargs.checkDeterminism) {
        // Replay every scenario under the threaded kernel (2 simulation
        // threads): admission decisions, batch composition and the
        // latency histograms must be bit-identical to the first pass.
        std::printf("\nDeterminism cross-check (threaded kernel, 2 "
                    "sim-threads):\n");
        sim::Simulator::setDefaultKernel(
            sim::Simulator::Kernel::Threaded);
        sim::Simulator::setDefaultSimThreads(2);
        int rc = 0;
        for (size_t i = 0; i < selected.size(); ++i) {
            sim::StatRegistry stats;
            ServiceReport rep = runScenario(*selected[i], args, sargs,
                                            jobs[i].config, stats);
            bool same = oracleString(rep) == oracleString(reports[i]);
            std::printf("  %-15s %s\n", selected[i]->name,
                        same ? "bit-identical" : "DIVERGED");
            if (!same)
                rc = 2;
        }
        sim::Simulator::resetDefaultKernel();
        sim::Simulator::resetDefaultSimThreads();
        if (rc)
            return rc;
    }
    return 0;
}
