/**
 * @file
 * BENCH_8/BENCH_9: traversal-as-a-service under sustained traffic.
 *
 * Stands up a persistent TraversalService (a DeviceGroup of 1..N
 * long-lived TtaDevices; three tenants: B-Tree lookups, radius
 * searches, rays) and drives it with the deterministic
 * closed/open-loop traffic generators: Poisson, bursty (2-state MMPP)
 * and closed-loop arrivals, millions of queries per scenario. Reports
 * sustained throughput plus p50/p99/p999 latency in simulated cycles
 * and microseconds (at Config::coreClockMhz), alongside host
 * wall-clock. Host-side tenant data (trees, payload pools, reference
 * results) is built once in a WorkloadCache shared by every scenario,
 * device count and determinism replay.
 *
 * Flags (every flag is registered on a bench::FlagSet: `--help` is
 * generated from the registrations, so it cannot drift, and unknown
 * flags exit 64; the shared workload/runner flags come from
 * bench::registerCommonFlags):
 *   --queries=N            arrivals per scenario (default 1,000,000)
 *   --bench=SUBSTR         run only scenarios whose name contains
 *                          SUBSTR; the special names "overload" and
 *                          "sched" run the BENCH_9 open-loop overload
 *                          study and the BENCH_10 scheduling study
 *   --scenario=NAME        run exactly one scenario; unknown names
 *                          list the valid ones and exit 64
 *   --list-scenarios       print scenario names and exit
 *   --devices=N            override every scenario's device count
 *   --serial-staging       run the DeviceGroup without worker threads
 *                          (bit-identical, single-threaded host path)
 *   --max-batch=N          admission policy: dispatch threshold (256)
 *   --max-wait=N           admission policy: deadline in cycles (50000)
 *   --mean-gap=N           open-loop mean inter-arrival gap (cycles)
 *   --sched=NAME           scheduling policy lld|size|affinity|steal|
 *                          full (service/scheduler.hh); default lld,
 *                          or the TTA_SCHED env var (the flag wins)
 *   --check-determinism    re-run every scenario (a) unchanged, (b)
 *                          under the threaded kernel with 2 sim
 *                          threads, (c) with --serial-staging toggled,
 *                          and require batch logs (global + per
 *                          device), the scheduler steal log, latency
 *                          histograms and the exact per-device
 *                          histogram merge to be bit-identical; exits
 *                          2 on divergence
 *   --check-overload-scaling=X  (overload study) require aggregate
 *                          saturated throughput at 4 devices >= X times
 *                          the 1-device value; exits 6 otherwise
 *   --check-sched-gain=X   (sched study) require the full policy to
 *                          reach >= X times lld's saturated throughput
 *                          at 4 devices with p99 not regressed; exits
 *                          7 otherwise
 *
 * JSON records (--json=FILE, one line per run) carry the service
 * scalars/counters plus derived values: throughput_qpmc (completed
 * queries per million simulated cycles), lat_p50/p99/p999_cycles and
 * _us, per-SLO-class percentiles, devices, offered load factor,
 * per-device batch/steal counts, and one trailing "workload_cache"
 * record carrying the WorkloadCache lookup/hit counters.
 */

#include "bench_common.hh"

#include "service/service.hh"
#include "sim/stats.hh"

using namespace bench;
using namespace ::tta::service;

namespace {

struct ScenarioSpec
{
    const char *name;
    ArrivalProcess process;
    bool mix;              //!< all three tenants vs B-Tree only
    double cancelFraction; //!< impatient clients
    uint32_t devices;      //!< DeviceGroup size
    bool slo;              //!< B-Tree lane is latency-sensitive
};

const ScenarioSpec kScenarios[] = {
    {"poisson/btree", ArrivalProcess::Poisson, false, 0.0, 1, false},
    {"poisson/mix", ArrivalProcess::Poisson, true, 0.0, 1, false},
    {"poisson/mix/d2", ArrivalProcess::Poisson, true, 0.0, 2, false},
    {"poisson/mix/d4", ArrivalProcess::Poisson, true, 0.0, 4, false},
    {"poisson/slo", ArrivalProcess::Poisson, true, 0.0, 2, true},
    {"bursty/mix", ArrivalProcess::Bursty, true, 0.0, 1, false},
    {"bursty/cancel", ArrivalProcess::Bursty, true, 0.02, 1, false},
    {"closed/mix", ArrivalProcess::ClosedLoop, true, 0.0, 1, false},
};

struct ServiceArgs
{
    uint64_t maxBatch = 256;
    uint64_t maxWait = 50000;
    uint64_t meanGap = 0;  //!< 0 = auto
    uint64_t devices = 0;  //!< 0 = scenario default
    std::string filter;    //!< --bench substring ("overload"/"sched")
    std::string scenario;  //!< --scenario exact name
    std::string schedName; //!< --sched; empty = TTA_SCHED or lld
    SchedPolicy sched = SchedPolicy::LeastLoaded; //!< resolved
    bool listScenarios = false;
    bool serialStaging = false;
    bool checkDeterminism = false;
    double overloadScale = 0.0; //!< --check-overload-scaling
    double schedGain = 0.0;     //!< --check-sched-gain
};

void
listScenarios()
{
    std::printf("scenarios (--scenario=NAME or --bench=SUBSTR):\n");
    for (const auto &s : kScenarios)
        std::printf("  %-15s devices=%u tenants=%s%s\n", s.name,
                    s.devices, s.mix ? "btree+radius+rays" : "btree",
                    s.slo ? " slo-classes" : "");
    std::printf("  %-15s BENCH_9 open-loop overload study "
                "(devices 1/2/4)\n",
                "overload");
    std::printf("  %-15s BENCH_10 scheduling-policy study "
                "(policy x devices 1/2/4)\n",
                "sched");
}

/** Oracle string for the determinism cross-checks: batch composition
 *  and completion order (globally and per device), every latency
 *  histogram, and the per-class views, bit-for-bit. */
std::string
oracleString(const ServiceReport &rep)
{
    std::string s = rep.batchLog;
    s += "total:" + rep.latency.dumpString();
    for (const auto &tr : rep.tenants) {
        s += tr.name + ":" + tr.latency.dumpString();
        s += tr.name + ".wait:" + tr.queueWait.dumpString();
    }
    for (size_t d = 0; d < rep.devices.size(); ++d) {
        s += "dev" + std::to_string(d) + ":" + rep.devices[d].batchLog;
        s += "dev" + std::to_string(d) + ".lat:" +
             rep.devices[d].latency.dumpString();
    }
    for (uint32_t c = 0; c < kNumSloClasses; ++c) {
        const ClassReport &cr = rep.classes[c];
        if (!cr.completed)
            continue;
        s += std::string("class.") +
             sloClassName(static_cast<SloClass>(c)) + ":" +
             cr.latency.dumpString();
    }
    // The scheduler's steal schedule (empty under non-stealing
    // policies) is part of the oracle: a steal moving to a different
    // (cycle, batch, device) triple on any kernel/staging/rerun is a
    // determinism break even if the latency histograms happen to agree.
    s += "steals:" + std::to_string(rep.steals) + "\n" + rep.stealLog;
    return s;
}

/** The merged-per-device histogram must equal the total, exactly. */
bool
mergeIsExact(const ServiceReport &rep)
{
    LatencyHistogram merged;
    for (const auto &dr : rep.devices)
        merged.merge(dr.latency);
    return merged.dumpString() == rep.latency.dumpString();
}

struct ScenarioRun
{
    ArrivalProcess process = ArrivalProcess::Poisson;
    bool mix = true;
    bool slo = false;
    double cancelFraction = 0.0;
    uint32_t devices = 1;
    double meanGap = 0.0; //!< 0 = auto
    bool pipelined = true;
    uint32_t clients = 512;      //!< closed-loop population
    double thinkCycles = 30000.0; //!< closed-loop think time
    SchedPolicy sched = SchedPolicy::LeastLoaded;
    size_t btreeKeys = 0;    //!< tree-size override; 0 = args.keys/5
    size_t radiusPoints = 0; //!< tree-size override; 0 = args.points/4
    /** Locality-bound tenant set for the sched study: this many
     *  equally-priced large-tree B-Tree tenants (distinct key sets, so
     *  distinct working sets) instead of the radius/rays mix, plus the
     *  base tenant shrunk into a cheap latency-sensitive lane. Tenant
     *  interleaving on one device then thrashes its L2 between key
     *  sets, which is exactly the regime affinity scheduling targets.
     *  0 = off (the regular mix). */
    uint32_t btreeFleet = 0;
};

ServiceReport
runService(const ScenarioRun &run, const Args &args,
           const ServiceArgs &sargs, const sim::Config &cfg,
           sim::StatRegistry &stats, WorkloadCache &cache)
{
    ServicePolicy policy;
    policy.maxBatch = static_cast<uint32_t>(sargs.maxBatch);
    policy.maxWaitCycles = sargs.maxWait;
    if (run.slo)
        policy.lsMaxWaitCycles = sargs.maxWait / 5;
    policy.numDevices = run.devices;
    policy.pipelinedStaging = run.pipelined;
    policy.sched = run.sched;

    TraversalService svc(cfg, stats, policy);
    size_t btree_keys = run.btreeKeys ? run.btreeKeys : args.keys / 5;
    size_t radius_points =
        run.radiusPoints ? run.radiusPoints : args.points / 4;
    // The fleet's latency-sensitive lane stays cheap: a small tree
    // whose lookups cost little and pollute little.
    size_t base_keys =
        run.btreeFleet ? std::max<size_t>(btree_keys / 16, 1024)
                       : btree_keys;
    auto key = [&](const std::string &w) {
        return std::string("svc.") + w + "/" +
               std::to_string(btree_keys) + "/" +
               std::to_string(radius_points) + "/" +
               std::to_string(args.seed);
    };
    auto btree = cache.getShared<BTreeTenantData>(
        key("btree@" + std::to_string(base_keys)), [&] {
            return BTreeTenantData::build(base_keys, /*pool=*/8192,
                                          args.seed);
        });
    svc.addTenant(std::make_unique<BTreeTenant>("btree", btree),
                  run.slo ? SloClass::LatencySensitive
                          : SloClass::Throughput);
    if (run.btreeFleet) {
        for (uint32_t i = 0; i < run.btreeFleet; ++i) {
            std::string name = "btree" + std::to_string(i);
            // Pool sized so one tenant's reusable hot set (upper
            // tree levels plus the pool's path lines, ~1MB at 4096
            // queries over a 1M-key tree) shares a 3MB device L2
            // with at most one other tenant: a device serving its
            // one or two pinned tenants runs warm, a device that
            // round-robins the whole fleet evicts every batch.
            auto data =
                cache.getShared<BTreeTenantData>(key(name), [&] {
                    return BTreeTenantData::build(
                        btree_keys, /*pool=*/4096,
                        args.seed + 1 + 17 * i);
                });
            svc.addTenant(
                std::make_unique<BTreeTenant>(name, data));
        }
    } else if (run.mix) {
        auto radius =
            cache.getShared<RadiusTenantData>(key("radius"), [&] {
                return RadiusTenantData::build(radius_points,
                                               /*pool=*/2048, 1.0f,
                                               args.seed);
            });
        auto rays = cache.getShared<RayTenantData>(key("rays"), [&] {
            return RayTenantData::build(SceneKind::CornellPt,
                                        /*pool=*/1024, args.seed);
        });
        svc.addTenant(std::make_unique<RadiusTenant>("radius", radius));
        svc.addTenant(std::make_unique<RayTenant>("rays", rays));
    }

    TrafficConfig tc;
    tc.process = run.process;
    tc.totalQueries = args.queries;
    tc.cancelFraction = run.cancelFraction;
    tc.cancelAfterMean = static_cast<double>(sargs.maxWait) / 2;
    // Query mix skewed toward the cheap tenant so the aggregate rate
    // keeps the devices saturated without the expensive tenants
    // dominating the makespan.
    if (run.btreeFleet) {
        // Fleet mode: a sliver of latency-sensitive traffic, the rest
        // split evenly across the equally-priced big-tree tenants.
        tc.tenantWeights.assign(1 + run.btreeFleet,
                                0.90 / run.btreeFleet);
        tc.tenantWeights[0] = 0.10;
    } else if (run.mix)
        tc.tenantWeights = {0.90, 0.07, 0.03};
    // Auto gap: keep the open-loop offered load near aggregate device
    // capacity (~a few tens of cycles per B-Tree query in a full
    // batch, divided across the group).
    double autoGap =
        (run.btreeFleet ? 20.0 : run.mix ? 180.0 : 8.0) / run.devices;
    tc.meanGapCycles = run.meanGap ? run.meanGap : autoGap;
    tc.clients = run.clients;
    tc.thinkCycles = run.thinkCycles;

    TrafficGen gen(tc, svc.numTenants(), args.seed ^ 0xbadc0ffeull);
    return svc.run(gen);
}

ScenarioRun
toRun(const ScenarioSpec &spec, const ServiceArgs &sargs)
{
    ScenarioRun run;
    run.process = spec.process;
    run.mix = spec.mix;
    run.slo = spec.slo;
    run.cancelFraction = spec.cancelFraction;
    run.devices = sargs.devices
                      ? static_cast<uint32_t>(sargs.devices)
                      : spec.devices;
    run.meanGap = static_cast<double>(sargs.meanGap);
    run.pipelined = !sargs.serialStaging;
    run.sched = sargs.sched;
    return run;
}

void
fillRecord(sim::RunRecord &rec, const ServiceReport &rep,
           const sim::Config &cfg, uint32_t devices)
{
    rec.cycles = rep.makespan;
    double mhz = cfg.coreClockMhz;
    rec.values["devices"] = static_cast<double>(devices);
    rec.values["throughput_qpmc"] = rep.throughputQpmc();
    rec.values["lat_p50_cycles"] =
        static_cast<double>(rep.latency.percentile(50));
    rec.values["lat_p99_cycles"] =
        static_cast<double>(rep.latency.percentile(99));
    rec.values["lat_p999_cycles"] =
        static_cast<double>(rep.latency.percentile(99.9));
    rec.values["lat_p50_us"] = cyclesToUs(rep.latency.percentile(50), mhz);
    rec.values["lat_p99_us"] = cyclesToUs(rep.latency.percentile(99), mhz);
    rec.values["lat_p999_us"] =
        cyclesToUs(rep.latency.percentile(99.9), mhz);
    rec.values["batches"] = static_cast<double>(rep.batches);
    rec.values["expired_dispatches"] =
        static_cast<double>(rep.expiredDispatches);
    rec.values["completed"] = static_cast<double>(rep.completed);
    rec.values["canceled"] = static_cast<double>(rep.canceled);
    rec.values["steals"] = static_cast<double>(rep.steals);
    for (size_t d = 0; d < rep.devices.size(); ++d) {
        std::string prefix = "dev" + std::to_string(d);
        rec.values[prefix + "_batches"] =
            static_cast<double>(rep.devices[d].batches);
        rec.values[prefix + "_steals"] =
            static_cast<double>(rep.devices[d].steals);
    }
    for (uint32_t c = 0; c < kNumSloClasses; ++c) {
        const ClassReport &cr = rep.classes[c];
        if (!cr.completed)
            continue;
        std::string prefix = std::string("class_") +
                             sloClassName(static_cast<SloClass>(c));
        rec.values[prefix + "_completed"] =
            static_cast<double>(cr.completed);
        rec.values[prefix + "_p50_cycles"] =
            static_cast<double>(cr.latency.percentile(50));
        rec.values[prefix + "_p99_cycles"] =
            static_cast<double>(cr.latency.percentile(99));
        rec.values[prefix + "_p999_cycles"] =
            static_cast<double>(cr.latency.percentile(99.9));
    }
}

void
emitRecords(const Args &args, const std::vector<sim::RunRecord> &records)
{
    if (args.json.empty())
        return;
    std::ofstream file;
    std::ostream *os = &std::cout;
    if (args.json != "-") {
        file.open(args.json, std::ios::app);
        if (!file) {
            std::fprintf(stderr, "cannot open %s\n", args.json.c_str());
            std::exit(1);
        }
        os = &file;
    }
    for (const auto &rec : records) {
        rec.writeJson(*os, args.jsonTiming != 0);
        *os << "\n";
    }
}

/**
 * One trailing JSON record for the WorkloadCache counters. Recorded
 * once, after every runner pool has joined: per-run snapshots would be
 * racy under --jobs (lookup order depends on host scheduling) and
 * would break --json-timing=0 byte-identity; the final aggregate is
 * deterministic (hits = lookups - distinct keys).
 */
sim::RunRecord
cacheRecord(const WorkloadCache &cache)
{
    sim::RunRecord rec;
    rec.name = "workload_cache";
    rec.values["cache_lookups"] = static_cast<double>(cache.lookups());
    rec.values["cache_hits"] = static_cast<double>(cache.hits());
    return rec;
}

void
printCacheLine(const WorkloadCache &cache)
{
    std::printf("workload cache: %llu of %llu tenant-data lookups hit "
                "(shared across tenants, devices and replays)\n",
                static_cast<unsigned long long>(cache.hits()),
                static_cast<unsigned long long>(cache.lookups()));
}

/**
 * BENCH_9: open-loop overload study. Per device count {1,2,4}: probe
 * the closed-loop capacity, then sweep offered load from 0.2x to 2x
 * of it and record throughput + per-class latency. @return exit code.
 */
int
runOverloadStudy(const Args &args, const ServiceArgs &sargs,
                 WorkloadCache &cache)
{
    const uint32_t kDevCounts[] = {1, 2, 4};
    const double kFactors[] = {0.2, 0.5, 0.8, 1.0, 1.25, 1.5, 2.0};

    printHeader("BENCH_9", "multi-device open-loop overload study",
                args);
    std::printf("  policy: max-batch=%llu max-wait=%llu cycles, "
                "slo classes on (btree=latency)\n",
                static_cast<unsigned long long>(sargs.maxBatch),
                static_cast<unsigned long long>(sargs.maxWait));

    // Pass 1: closed-loop capacity probe per device count.
    std::vector<sim::Job> probeJobs;
    std::vector<ServiceReport> probeReports(std::size(kDevCounts));
    for (size_t i = 0; i < std::size(kDevCounts); ++i) {
        sim::Job job;
        job.name = "overload/probe/d" + std::to_string(kDevCounts[i]);
        job.config = modeConfig(sim::AccelMode::Tta);
        job.seed = args.seed;
        job.fn = [&, i](const sim::Config &cfg,
                        sim::StatRegistry &stats, sim::RunRecord &rec) {
            ScenarioRun run;
            run.process = ArrivalProcess::ClosedLoop;
            run.slo = true;
            run.devices = kDevCounts[i];
            run.pipelined = !sargs.serialStaging;
            // The probe must saturate the group, not the clients:
            // a large population with short think time keeps every
            // device backlogged, so completed/makespan is the
            // capacity point, not the client-limited arrival rate.
            run.clients = 2048 * kDevCounts[i];
            run.thinkCycles = 500.0;
            ServiceReport rep =
                runService(run, args, sargs, cfg, stats, cache);
            fillRecord(rec, rep, cfg, run.devices);
            probeReports[i] = rep;
        };
        probeJobs.push_back(std::move(job));
    }
    sim::ExperimentRunner probeRunner(static_cast<unsigned>(args.jobs));
    std::vector<sim::RunRecord> probeRecords =
        probeRunner.run(probeJobs);
    for (const auto &rec : probeRecords) {
        if (rec.failed()) {
            std::fprintf(stderr, "probe '%s' failed: %s\n",
                         rec.name.c_str(), rec.error.c_str());
            return 1;
        }
    }

    double capacity[std::size(kDevCounts)];
    std::printf("\nclosed-loop capacity probes:\n");
    for (size_t i = 0; i < std::size(kDevCounts); ++i) {
        capacity[i] = probeReports[i].throughputQpmc();
        std::printf("  d%u: %.1f qpmc (%llu batches)\n", kDevCounts[i],
                    capacity[i],
                    static_cast<unsigned long long>(
                        probeReports[i].batches));
        if (capacity[i] <= 0.0) {
            std::fprintf(stderr, "degenerate capacity probe\n");
            return 1;
        }
    }

    // Pass 2: the open-loop sweep.
    struct Cell
    {
        uint32_t devices;
        double factor;
        ServiceReport rep;
    };
    std::vector<Cell> cells;
    std::vector<sim::Job> jobs;
    for (size_t i = 0; i < std::size(kDevCounts); ++i) {
        for (double f : kFactors) {
            size_t idx = cells.size();
            cells.push_back({kDevCounts[i], f, {}});
            // Offered rate = factor x capacity; qpmc is per million
            // cycles, so the mean gap is 1e6 / (capacity * factor).
            double gap = 1e6 / (capacity[i] * f);
            sim::Job job;
            char name[64];
            std::snprintf(name, sizeof name, "overload/d%u/x%.2f",
                          kDevCounts[i], f);
            job.name = name;
            job.config = modeConfig(sim::AccelMode::Tta);
            job.seed = args.seed;
            job.fn = [&, idx, gap](const sim::Config &cfg,
                                   sim::StatRegistry &stats,
                                   sim::RunRecord &rec) {
                Cell &cell = cells[idx];
                ScenarioRun run;
                run.process = ArrivalProcess::Poisson;
                run.slo = true;
                run.devices = cell.devices;
                run.meanGap = gap;
                run.pipelined = !sargs.serialStaging;
                cell.rep =
                    runService(run, args, sargs, cfg, stats, cache);
                fillRecord(rec, cell.rep, cfg, cell.devices);
                rec.values["offered_factor"] = cell.factor;
                rec.values["offered_qpmc"] =
                    cell.factor * capacity[idx / std::size(kFactors)];
            };
            jobs.push_back(std::move(job));
        }
    }
    sim::ExperimentRunner runner(static_cast<unsigned>(args.jobs));
    std::vector<sim::RunRecord> records = runner.run(jobs);
    for (const auto &rec : records) {
        if (rec.failed()) {
            std::fprintf(stderr, "run '%s' failed: %s\n",
                         rec.name.c_str(), rec.error.c_str());
            return 1;
        }
    }
    std::vector<sim::RunRecord> all = probeRecords;
    all.insert(all.end(), records.begin(), records.end());
    all.push_back(cacheRecord(cache));
    emitRecords(args, all);

    std::printf("\n%-6s %6s %9s %9s | %10s %10s | %10s %10s %8s\n",
                "dev", "load", "offered", "qpmc", "lat.p99",
                "lat.p999", "thr.p99", "thr.p999", "expired");
    std::printf("%-6s %6s %9s %9s | %21s | %s\n", "", "", "(qpmc)", "",
                "latency class (us)", "throughput class (us) ");
    for (const Cell &cell : cells) {
        double mhz = modeConfig(sim::AccelMode::Tta).coreClockMhz;
        const ClassReport &ls = cell.rep.classes[static_cast<uint32_t>(
            SloClass::LatencySensitive)];
        const ClassReport &tp = cell.rep.classes[static_cast<uint32_t>(
            SloClass::Throughput)];
        size_t di = 0;
        while (kDevCounts[di] != cell.devices)
            ++di;
        std::printf("d%-5u %5.2fx %9.1f %9.1f | %10.1f %10.1f | %10.1f "
                    "%10.1f %8llu\n",
                    cell.devices, cell.factor,
                    cell.factor * capacity[di],
                    cell.rep.throughputQpmc(),
                    cyclesToUs(ls.latency.percentile(99), mhz),
                    cyclesToUs(ls.latency.percentile(99.9), mhz),
                    cyclesToUs(tp.latency.percentile(99), mhz),
                    cyclesToUs(tp.latency.percentile(99.9), mhz),
                    static_cast<unsigned long long>(
                        cell.rep.expiredDispatches));
    }
    std::printf("(offered = factor x closed-loop capacity; qpmc = "
                "completed per million cycles)\n");
    printCacheLine(cache);

    if (sargs.overloadScale > 0.0) {
        // Saturated aggregate scaling: the 2.0x cell at 4 devices vs
        // 1 device, on simulated throughput (host-independent).
        double q1 = 0.0, q4 = 0.0;
        for (const Cell &cell : cells) {
            if (cell.factor != 2.0)
                continue;
            if (cell.devices == 1)
                q1 = cell.rep.throughputQpmc();
            if (cell.devices == 4)
                q4 = cell.rep.throughputQpmc();
        }
        double scale = q1 > 0.0 ? q4 / q1 : 0.0;
        bool ok = scale >= sargs.overloadScale;
        std::printf("overload scaling gate: d4/d1 saturated throughput "
                    "%.2fx (need >= %.2fx): %s\n",
                    scale, sargs.overloadScale, ok ? "PASS" : "FAIL");
        if (!ok)
            return 6;
    }
    return 0;
}

/**
 * BENCH_10: scheduling-policy study. Per device count {1,2,4}: probe
 * the closed-loop capacity under lld, then run a locality-bound
 * open-loop scenario — a fleet of equally-priced large-tree B-Tree
 * tenants with distinct key sets plus a cheap latency-sensitive lane —
 * at a saturating offered load (1.5x capacity) under every scheduling
 * policy and compare throughput, tail latency and steal activity. One
 * tenant's hot paths fit a device's L2, the fleet's combined working
 * set does not, so lld's tenant interleaving thrashes — precisely the
 * locality that affinity placement recovers. @return exit code.
 */
int
runSchedStudy(const Args &args, const ServiceArgs &sargs,
              WorkloadCache &cache)
{
    const uint32_t kDevCounts[] = {1, 2, 4};
    const SchedPolicy kPolicies[] = {
        SchedPolicy::LeastLoaded, SchedPolicy::SizeAware,
        SchedPolicy::Affinity, SchedPolicy::Steal, SchedPolicy::Full,
    };
    const double kLoadFactor = 1.5; //!< offered load vs capacity

    printHeader("BENCH_10", "locality-aware scheduling-policy study",
                args);
    std::printf("  policy sweep: lld size affinity steal full; "
                "max-batch=%llu max-wait=%llu, offered load %.1fx "
                "capacity, slo classes on\n",
                static_cast<unsigned long long>(sargs.maxBatch),
                static_cast<unsigned long long>(sargs.maxWait),
                kLoadFactor);

    // Locality-bound tenant fleet: six equally-priced B-Tree tenants
    // on deliberately large trees (keys = --keys, ~10x the BENCH_8
    // scenarios) with distinct key sets, plus a cheap
    // latency-sensitive lane. Six lanes over four devices keeps every
    // device saturated while still letting affinity carve stable
    // 1-2-tenant homes; one device's L2 holds one or two tenants'
    // hot paths comfortably but never the whole fleet, so lld's
    // round-robin interleaving evicts on every batch — the locality
    // affinity recovers it.
    auto baseRun = [&](uint32_t devices) {
        ScenarioRun run;
        run.slo = true;
        run.mix = false;
        run.btreeFleet = 6;
        run.devices = devices;
        run.pipelined = !sargs.serialStaging;
        run.btreeKeys = args.keys;
        run.radiusPoints = args.points;
        return run;
    };

    // Pass 1: closed-loop capacity probe per device count, under lld
    // so every policy faces the identical offered load.
    std::vector<sim::Job> probeJobs;
    std::vector<ServiceReport> probeReports(std::size(kDevCounts));
    for (size_t i = 0; i < std::size(kDevCounts); ++i) {
        sim::Job job;
        job.name = "sched/probe/d" + std::to_string(kDevCounts[i]);
        job.config = modeConfig(sim::AccelMode::Tta);
        job.seed = args.seed;
        job.fn = [&, i](const sim::Config &cfg,
                        sim::StatRegistry &stats, sim::RunRecord &rec) {
            ScenarioRun run = baseRun(kDevCounts[i]);
            run.process = ArrivalProcess::ClosedLoop;
            // Enough closed-loop clients to fill several maxBatch
            // batches per device, or the probe understates capacity.
            run.clients = 8 * static_cast<uint32_t>(sargs.maxBatch) *
                          kDevCounts[i];
            run.thinkCycles = 500.0;
            ServiceReport rep =
                runService(run, args, sargs, cfg, stats, cache);
            fillRecord(rec, rep, cfg, run.devices);
            probeReports[i] = rep;
        };
        probeJobs.push_back(std::move(job));
    }
    sim::ExperimentRunner probeRunner(static_cast<unsigned>(args.jobs));
    std::vector<sim::RunRecord> probeRecords =
        probeRunner.run(probeJobs);
    for (const auto &rec : probeRecords) {
        if (rec.failed()) {
            std::fprintf(stderr, "probe '%s' failed: %s\n",
                         rec.name.c_str(), rec.error.c_str());
            return 1;
        }
    }
    double capacity[std::size(kDevCounts)];
    std::printf("\nclosed-loop capacity probes (lld):\n");
    for (size_t i = 0; i < std::size(kDevCounts); ++i) {
        capacity[i] = probeReports[i].throughputQpmc();
        std::printf("  d%u: %.1f qpmc (%llu batches)\n", kDevCounts[i],
                    capacity[i],
                    static_cast<unsigned long long>(
                        probeReports[i].batches));
        if (capacity[i] <= 0.0) {
            std::fprintf(stderr, "degenerate capacity probe\n");
            return 1;
        }
    }

    // Pass 2: policy x devices at the saturating offered load.
    struct Cell
    {
        uint32_t devices;
        SchedPolicy policy;
        ServiceReport rep;
    };
    std::vector<Cell> cells;
    std::vector<sim::Job> jobs;
    for (size_t i = 0; i < std::size(kDevCounts); ++i) {
        double gap = 1e6 / (capacity[i] * kLoadFactor);
        for (SchedPolicy pol : kPolicies) {
            size_t idx = cells.size();
            cells.push_back({kDevCounts[i], pol, {}});
            sim::Job job;
            job.name = std::string("sched/d") +
                       std::to_string(kDevCounts[i]) + "/" +
                       schedPolicyName(pol);
            job.config = modeConfig(sim::AccelMode::Tta);
            job.seed = args.seed;
            job.fn = [&, idx, gap, pol](const sim::Config &cfg,
                                        sim::StatRegistry &stats,
                                        sim::RunRecord &rec) {
                Cell &cell = cells[idx];
                ScenarioRun run = baseRun(cell.devices);
                run.process = ArrivalProcess::Poisson;
                run.meanGap = gap;
                run.sched = pol;
                cell.rep =
                    runService(run, args, sargs, cfg, stats, cache);
                fillRecord(rec, cell.rep, cfg, cell.devices);
                rec.values["offered_factor"] = kLoadFactor;
                rec.values["l2_hits"] = static_cast<double>(
                    stats.counterValue("l2.hits"));
                rec.values["l2_misses"] = static_cast<double>(
                    stats.counterValue("l2.misses"));
                rec.values["dram_reads"] = static_cast<double>(
                    stats.counterValue("dram.reads"));
            };
            jobs.push_back(std::move(job));
        }
    }
    sim::ExperimentRunner runner(static_cast<unsigned>(args.jobs));
    std::vector<sim::RunRecord> records = runner.run(jobs);
    for (const auto &rec : records) {
        if (rec.failed()) {
            std::fprintf(stderr, "run '%s' failed: %s\n",
                         rec.name.c_str(), rec.error.c_str());
            return 1;
        }
    }
    std::vector<sim::RunRecord> all = probeRecords;
    all.insert(all.end(), records.begin(), records.end());
    all.push_back(cacheRecord(cache));
    emitRecords(args, all);

    double mhz = modeConfig(sim::AccelMode::Tta).coreClockMhz;
    std::printf("\n%-6s %-9s %9s %10s %10s %8s %8s\n", "dev",
                "policy", "qpmc", "p99(us)", "ls.p99(us)", "steals",
                "expired");
    for (const Cell &cell : cells) {
        const ClassReport &ls = cell.rep.classes[static_cast<uint32_t>(
            SloClass::LatencySensitive)];
        std::printf("d%-5u %-9s %9.1f %10.1f %10.1f %8llu %8llu\n",
                    cell.devices, schedPolicyName(cell.policy),
                    cell.rep.throughputQpmc(),
                    cyclesToUs(cell.rep.latency.percentile(99), mhz),
                    cyclesToUs(ls.latency.percentile(99), mhz),
                    static_cast<unsigned long long>(cell.rep.steals),
                    static_cast<unsigned long long>(
                        cell.rep.expiredDispatches));
    }
    std::printf("(offered load %.1fx the lld closed-loop capacity; "
                "qpmc = completed per million cycles)\n",
                kLoadFactor);
    printCacheLine(cache);

    if (sargs.schedGain > 0.0) {
        const ServiceReport *lld = nullptr, *full = nullptr;
        for (const Cell &cell : cells) {
            if (cell.devices != 4)
                continue;
            if (cell.policy == SchedPolicy::LeastLoaded)
                lld = &cell.rep;
            if (cell.policy == SchedPolicy::Full)
                full = &cell.rep;
        }
        double q_lld = lld ? lld->throughputQpmc() : 0.0;
        double q_full = full ? full->throughputQpmc() : 0.0;
        double gain = q_lld > 0.0 ? q_full / q_lld : 0.0;
        uint64_t p99_lld = lld ? lld->latency.percentile(99) : 0;
        uint64_t p99_full = full ? full->latency.percentile(99) : 0;
        bool gain_ok = gain >= sargs.schedGain;
        bool p99_ok = p99_full <= p99_lld;
        std::printf("sched gain gate (d4): full/lld saturated "
                    "throughput %.2fx (need >= %.2fx): %s; p99 %llu vs "
                    "%llu cycles (need <=): %s\n",
                    gain, sargs.schedGain, gain_ok ? "PASS" : "FAIL",
                    static_cast<unsigned long long>(p99_full),
                    static_cast<unsigned long long>(p99_lld),
                    p99_ok ? "PASS" : "FAIL");
        if (!gain_ok || !p99_ok)
            return 7;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ServiceArgs sargs;
    Args args;
    FlagSet fs(argv[0],
               "traversal-as-a-service bench (BENCH_8/9/10); see the "
               "file comment in bench/bench_service.cc");
    registerCommonFlags(fs, args);
    fs.number("max-batch", sargs.maxBatch,
              "admission dispatch threshold (queries)");
    fs.number("max-wait", sargs.maxWait,
              "admission deadline in cycles");
    fs.number("mean-gap", sargs.meanGap,
              "open-loop mean inter-arrival gap (0 = auto)");
    fs.number("devices", sargs.devices,
              "override every scenario's device count");
    fs.str("bench", sargs.filter,
           "scenario substring filter ('overload'/'sched' = studies)");
    fs.str("scenario", sargs.scenario, "run exactly one scenario");
    fs.str("sched", sargs.schedName,
           "scheduling policy lld|size|affinity|steal|full "
           "(default: TTA_SCHED or lld)");
    fs.flag("list-scenarios", sargs.listScenarios,
            "print scenario names and exit");
    fs.flag("serial-staging", sargs.serialStaging,
            "single-threaded host staging (bit-identical)");
    fs.flag("check-determinism", sargs.checkDeterminism,
            "replay rerun/threaded-2/staging-flip; exit 2 on "
            "divergence");
    fs.real("check-overload-scaling", sargs.overloadScale,
            "overload study: require d4 >= X times d1; exit 6");
    fs.real("check-sched-gain", sargs.schedGain,
            "sched study: require full >= X times lld at d4; exit 7");
    fs.parse(argc, argv);
    args.applyDefaults();

    if (!sargs.schedName.empty()) {
        if (!parseSchedPolicy(sargs.schedName, sargs.sched)) {
            std::fprintf(stderr,
                         "unknown --sched=%s (lld|size|affinity|steal|"
                         "full)\n",
                         sargs.schedName.c_str());
            return 64;
        }
    } else {
        sargs.sched = schedPolicyFromEnv(SchedPolicy::LeastLoaded);
    }

    if (sargs.listScenarios) {
        listScenarios();
        return 0;
    }

    WorkloadCache cache(args.rebuildDevice == 0);

    if (sargs.filter == "overload" || sargs.scenario == "overload") {
        if (args.queries == 16384)
            args.queries = 120000; // overload default per cell
        return runOverloadStudy(args, sargs, cache);
    }
    if (sargs.filter == "sched" || sargs.scenario == "sched") {
        if (args.queries == 16384)
            args.queries = 120000; // sched-study default per cell
        // Locality-bound study defaults (overridable): deep trees so
        // one tenant's hot path set is a meaningful fraction of the
        // L2, and a mid-sized batch. 512 queries amortize launch cost
        // but leave less query-level overlap than the accelerator can
        // hide a cold L2 behind, so the warm/cold contrast the
        // scheduler creates actually shows up in batch time (at 1024
        // the latency hiding flattens a 38% L2-miss reduction into a
        // ~1% throughput change).
        if (args.keys == 100000)
            args.keys = 1000000;
        if (sargs.maxBatch == 256)
            sargs.maxBatch = 512;
        return runSchedStudy(args, sargs, cache);
    }
    if (args.queries == 16384)
        args.queries = 1000000; // service default: a million arrivals

    std::vector<const ScenarioSpec *> selected;
    if (!sargs.scenario.empty()) {
        for (const auto &s : kScenarios)
            if (sargs.scenario == s.name)
                selected.push_back(&s);
        if (selected.empty()) {
            std::fprintf(stderr, "unknown --scenario=%s\n",
                         sargs.scenario.c_str());
            listScenarios();
            return 64;
        }
    } else {
        for (const auto &s : kScenarios)
            if (sargs.filter.empty() ||
                std::string(s.name).find(sargs.filter) !=
                    std::string::npos)
                selected.push_back(&s);
        if (selected.empty()) {
            std::fprintf(stderr, "no scenario matches --bench=%s\n",
                         sargs.filter.c_str());
            listScenarios();
            return 64;
        }
    }

    printHeader("BENCH_8", "traversal-as-a-service latency/throughput",
                args);
    std::printf("  policy: max-batch=%llu max-wait=%llu cycles "
                "sched=%s%s%s\n",
                static_cast<unsigned long long>(sargs.maxBatch),
                static_cast<unsigned long long>(sargs.maxWait),
                schedPolicyName(sargs.sched),
                sargs.devices ? " devices-override" : "",
                sargs.serialStaging ? " serial-staging" : "");

    // One runner job per scenario: private registries, deterministic
    // result order, JSON records for free.
    std::vector<ServiceReport> reports(selected.size());
    std::vector<sim::Job> jobs;
    for (size_t i = 0; i < selected.size(); ++i) {
        const ScenarioSpec &spec = *selected[i];
        sim::Job job;
        job.name = spec.name;
        job.config = modeConfig(sim::AccelMode::Tta);
        job.seed = args.seed;
        job.fn = [&, i, &spec = *selected[i]](const sim::Config &cfg,
                                              sim::StatRegistry &stats,
                                              sim::RunRecord &rec) {
            ScenarioRun run = toRun(spec, sargs);
            ServiceReport rep =
                runService(run, args, sargs, cfg, stats, cache);
            fillRecord(rec, rep, cfg, run.devices);
            reports[i] = rep;
        };
        jobs.push_back(std::move(job));
    }

    sim::ExperimentRunner runner(static_cast<unsigned>(args.jobs));
    std::vector<sim::RunRecord> records = runner.run(jobs);
    for (const auto &rec : records) {
        if (rec.failed()) {
            std::fprintf(stderr, "scenario '%s' failed: %s\n",
                         rec.name.c_str(), rec.error.c_str());
            return 1;
        }
    }
    {
        std::vector<sim::RunRecord> all = records;
        all.push_back(cacheRecord(cache));
        emitRecords(args, all);
    }

    std::printf("\n%-15s %3s %9s %7s %8s %9s %9s %9s %8s %8s\n",
                "scenario", "dev", "queries", "batches", "qpmc",
                "p50(us)", "p99(us)", "p999(us)", "util", "wall(s)");
    for (size_t i = 0; i < selected.size(); ++i) {
        const ServiceReport &rep = reports[i];
        double mhz = jobs[i].config.coreClockMhz;
        uint32_t dev = static_cast<uint32_t>(rep.devices.size());
        double util =
            rep.makespan
                ? 100.0 * static_cast<double>(rep.deviceBusy) /
                      (static_cast<double>(rep.makespan) * dev)
                : 0.0;
        std::printf("%-15s %3u %9llu %7llu %8.1f %9.1f %9.1f %9.1f "
                    "%7.1f%% %8.2f\n",
                    selected[i]->name, dev,
                    static_cast<unsigned long long>(rep.completed),
                    static_cast<unsigned long long>(rep.batches),
                    rep.throughputQpmc(),
                    cyclesToUs(rep.latency.percentile(50), mhz),
                    cyclesToUs(rep.latency.percentile(99), mhz),
                    cyclesToUs(rep.latency.percentile(99.9), mhz), util,
                    records[i].wallSeconds);
    }
    std::printf("(qpmc = completed queries per million simulated "
                "cycles; util = mean device busy fraction)\n");
    printCacheLine(cache);

    int rc = 0;
    for (size_t i = 0; i < selected.size(); ++i) {
        if (!mergeIsExact(reports[i])) {
            std::fprintf(stderr,
                         "%s: per-device histogram merge is not exact\n",
                         selected[i]->name);
            rc = 2;
        }
    }
    if (rc)
        return rc;

    if (sargs.checkDeterminism) {
        // Replay every scenario three ways: identical rerun, threaded
        // kernel (2 simulation threads), and the opposite staging mode.
        // Admission decisions, batch composition (global and per
        // device), and all latency histograms must be bit-identical.
        struct Pass
        {
            const char *name;
            bool threaded;
            bool flipStaging;
        };
        const Pass kPasses[] = {
            {"rerun", false, false},
            {"threaded/2", true, false},
            {"staging-flip", false, true},
        };
        for (const Pass &pass : kPasses) {
            std::printf("\nDeterminism cross-check (%s):\n", pass.name);
            if (pass.threaded) {
                sim::Simulator::setDefaultKernel(
                    sim::Simulator::Kernel::Threaded);
                sim::Simulator::setDefaultSimThreads(2);
            }
            for (size_t i = 0; i < selected.size(); ++i) {
                sim::StatRegistry stats;
                ScenarioRun run = toRun(*selected[i], sargs);
                if (pass.flipStaging)
                    run.pipelined = !run.pipelined;
                ServiceReport rep = runService(run, args, sargs,
                                               jobs[i].config, stats,
                                               cache);
                bool same =
                    oracleString(rep) == oracleString(reports[i]) &&
                    mergeIsExact(rep);
                std::printf("  %-15s %s\n", selected[i]->name,
                            same ? "bit-identical" : "DIVERGED");
                if (!same)
                    rc = 2;
            }
            if (pass.threaded) {
                sim::Simulator::resetDefaultKernel();
                sim::Simulator::resetDefaultSimThreads();
            }
        }
        if (rc)
            return rc;
    }
    return 0;
}
