/**
 * @file
 * Figure 13: DRAM utilization of the selected applications on the
 * non-accelerated baseline GPU, baseline RTA, TTA, and TTA+.
 *
 * Paper expectation: the dedicated hardware memory scheduler and the
 * deep warp buffer let the accelerators keep far more traversals in
 * flight, roughly doubling DRAM utilization for the memory-bound index
 * searches.
 */

#include "bench_common.hh"

using namespace bench;

int
main(int argc, char **argv)
{
    Args args = Args::parse(argc, argv);
    printHeader("Figure 13", "DRAM utilization per hardware level", args);
    std::printf("%-12s %10s %10s %10s %10s\n", "app", "BASE", "RTA",
                "TTA", "TTA+");

    auto pct = [](double x) { return 100.0 * x; };

    for (auto kind : {trees::BTreeKind::BTree, trees::BTreeKind::BStarTree,
                      trees::BTreeKind::BPlusTree}) {
        BTreeWorkload wl(kind, args.keys, args.queries, args.seed);
        sim::StatRegistry s0, s1, s2;
        RunMetrics base =
            wl.runBaseline(modeConfig(sim::AccelMode::BaselineGpu), s0);
        RunMetrics tta =
            wl.runAccelerated(modeConfig(sim::AccelMode::Tta), s1);
        RunMetrics ttap =
            wl.runAccelerated(modeConfig(sim::AccelMode::TtaPlus), s2);
        std::printf("%-12s %9.1f%% %10s %9.1f%% %9.1f%%\n",
                    trees::bTreeKindName(kind), pct(base.dramUtilization),
                    "n/a", pct(tta.dramUtilization),
                    pct(ttap.dramUtilization));
    }

    for (int dims : {2, 3}) {
        NBodyWorkload wl(dims, args.bodies, args.seed);
        sim::StatRegistry s0, s1, s2;
        RunMetrics base =
            wl.runBaseline(modeConfig(sim::AccelMode::BaselineGpu), s0);
        RunMetrics tta =
            wl.runAccelerated(modeConfig(sim::AccelMode::Tta), s1);
        RunMetrics ttap =
            wl.runAccelerated(modeConfig(sim::AccelMode::TtaPlus), s2);
        std::printf("%-12s %9.1f%% %10s %9.1f%% %9.1f%%\n",
                    dims == 2 ? "NBODY-2D" : "NBODY-3D",
                    pct(base.dramUtilization), "n/a",
                    pct(tta.dramUtilization), pct(ttap.dramUtilization));
    }

    {
        RtnnWorkload wl(args.points, args.queries / 4, 1.0f, args.seed);
        sim::StatRegistry s0, s1, s2, s3;
        RunMetrics base =
            wl.runBaseline(modeConfig(sim::AccelMode::BaselineGpu), s0);
        RunMetrics rta = wl.runAccelerated(
            modeConfig(sim::AccelMode::BaselineRta), s1, false);
        RunMetrics tta =
            wl.runAccelerated(modeConfig(sim::AccelMode::Tta), s2, true);
        RunMetrics ttap = wl.runAccelerated(
            modeConfig(sim::AccelMode::TtaPlus), s3, true);
        std::printf("%-12s %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n", "RTNN",
                    pct(base.dramUtilization), pct(rta.dramUtilization),
                    pct(tta.dramUtilization), pct(ttap.dramUtilization));
    }

    std::printf("\nPaper shape check: the accelerators raise DRAM "
                "utilization over the baseline GPU for the divergent "
                "index/radius searches (advantage 3 of Section II-C).\n");
    return 0;
}
