/**
 * @file
 * Figure 13: DRAM utilization of the selected applications on the
 * non-accelerated baseline GPU, baseline RTA, TTA, and TTA+.
 *
 * Paper expectation: the dedicated hardware memory scheduler and the
 * deep warp buffer let the accelerators keep far more traversals in
 * flight, roughly doubling DRAM utilization for the memory-bound index
 * searches.
 *
 * The table also reports the TTA run's L2 *read* miss rate. Write-through
 * misses never allocate or fill, so they are tracked separately
 * (l2.write_misses) and excluded here — folding them in would overstate
 * the miss rate for workloads with a result write-out phase.
 */

#include "bench_common.hh"

using namespace bench;

int
main(int argc, char **argv)
{
    Args args = Args::parse(argc, argv);
    printHeader("Figure 13", "DRAM utilization per hardware level", args);

    Sweep sweep(args);
    constexpr size_t kNone = static_cast<size_t>(-1);
    struct Row
    {
        std::string app;
        size_t base, rta = kNone, tta, ttap;
    };
    std::vector<Row> rows;

    for (auto kind : {trees::BTreeKind::BTree, trees::BTreeKind::BStarTree,
                      trees::BTreeKind::BPlusTree}) {
        auto runBase = [kind, &args](const sim::Config &cfg,
                                     sim::StatRegistry &stats) {
            BTreeWorkload wl(kind, args.keys, args.queries, args.seed);
            return wl.runBaseline(cfg, stats);
        };
        auto runAccel = [kind, &args](const sim::Config &cfg,
                                      sim::StatRegistry &stats) {
            BTreeWorkload wl(kind, args.keys, args.queries, args.seed);
            return wl.runAccelerated(cfg, stats);
        };
        std::string tag = std::string("btree/") +
                          trees::bTreeKindName(kind);
        Row row;
        row.app = trees::bTreeKindName(kind);
        row.base = sweep.add(tag + "/base",
                             modeConfig(sim::AccelMode::BaselineGpu),
                             runBase);
        row.tta = sweep.add(tag + "/tta", modeConfig(sim::AccelMode::Tta),
                            runAccel);
        row.ttap = sweep.add(tag + "/ttaplus",
                             modeConfig(sim::AccelMode::TtaPlus),
                             runAccel);
        rows.push_back(row);
    }

    for (int dims : {2, 3}) {
        auto runBase = [dims, &args](const sim::Config &cfg,
                                     sim::StatRegistry &stats) {
            NBodyWorkload wl(dims, args.bodies, args.seed);
            return wl.runBaseline(cfg, stats);
        };
        auto runAccel = [dims, &args](const sim::Config &cfg,
                                      sim::StatRegistry &stats) {
            NBodyWorkload wl(dims, args.bodies, args.seed);
            return wl.runAccelerated(cfg, stats);
        };
        std::string tag = std::string("nbody/") + std::to_string(dims) +
                          "d";
        Row row;
        row.app = dims == 2 ? "NBODY-2D" : "NBODY-3D";
        row.base = sweep.add(tag + "/base",
                             modeConfig(sim::AccelMode::BaselineGpu),
                             runBase);
        row.tta = sweep.add(tag + "/tta", modeConfig(sim::AccelMode::Tta),
                            runAccel);
        row.ttap = sweep.add(tag + "/ttaplus",
                             modeConfig(sim::AccelMode::TtaPlus),
                             runAccel);
        rows.push_back(row);
    }

    {
        auto runBase = [&args](const sim::Config &cfg,
                               sim::StatRegistry &stats) {
            RtnnWorkload wl(args.points, args.queries / 4, 1.0f,
                            args.seed);
            return wl.runBaseline(cfg, stats);
        };
        auto runAccel = [&args](bool offload) {
            return [offload, &args](const sim::Config &cfg,
                                    sim::StatRegistry &stats) {
                RtnnWorkload wl(args.points, args.queries / 4, 1.0f,
                                args.seed);
                return wl.runAccelerated(cfg, stats, offload);
            };
        };
        Row row;
        row.app = "RTNN";
        row.base = sweep.add("rtnn/base",
                             modeConfig(sim::AccelMode::BaselineGpu),
                             runBase);
        row.rta = sweep.add("rtnn/rta",
                            modeConfig(sim::AccelMode::BaselineRta),
                            runAccel(false));
        row.tta = sweep.add("rtnn/tta", modeConfig(sim::AccelMode::Tta),
                            runAccel(true));
        row.ttap = sweep.add("rtnn/ttaplus",
                             modeConfig(sim::AccelMode::TtaPlus),
                             runAccel(true));
        rows.push_back(row);
    }

    sweep.run();

    auto pct = [](double x) { return 100.0 * x; };
    std::printf("%-12s %10s %10s %10s %10s %14s\n", "app", "BASE", "RTA",
                "TTA", "TTA+", "L2 rd-miss(TTA)");
    for (const Row &row : rows) {
        const sim::StatRegistry &tta_stats = sweep.record(row.tta).stats;
        uint64_t rd_miss = tta_stats.counterValue("l2.read_misses");
        uint64_t hits = tta_stats.counterValue("l2.hits");
        double rd_miss_rate =
            hits + rd_miss
                ? static_cast<double>(rd_miss) / (hits + rd_miss) : 0.0;
        char rta_col[16];
        if (row.rta == kNone)
            std::snprintf(rta_col, sizeof(rta_col), "%10s", "n/a");
        else
            std::snprintf(rta_col, sizeof(rta_col), "%9.1f%%",
                          pct(sweep[row.rta].dramUtilization));
        std::printf("%-12s %9.1f%% %10s %9.1f%% %9.1f%% %13.1f%%\n",
                    row.app.c_str(), pct(sweep[row.base].dramUtilization),
                    rta_col, pct(sweep[row.tta].dramUtilization),
                    pct(sweep[row.ttap].dramUtilization),
                    pct(rd_miss_rate));
    }

    std::printf("\nPaper shape check: the accelerators raise DRAM "
                "utilization over the baseline GPU for the divergent "
                "index/radius searches (advantage 3 of Section II-C).\n");
    return 0;
}
