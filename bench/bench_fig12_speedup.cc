/**
 * @file
 * Figure 12: performance of the selected applications on TTA and TTA+
 * relative to the baseline GPU (top: CUDA applications, bottom: RTA
 * applications).
 *
 * Paper expectations: up to 5.4x for B-Tree variants (geomean ~2.4x,
 * better when queries outnumber keys; B+Tree lowest), 1.1-1.7x N-Body
 * (kernel fusion adds ~1.2x, to ~1.9x), RTNN already beats CUDA on the
 * RTA and gains up to ~1.4x more from offloading the intersection
 * shaders (*RTNN); unstarred RTNN slows down on TTA+.
 */

#include "bench_common.hh"

using namespace bench;

int
main(int argc, char **argv)
{
    Args args = Args::parse(argc, argv);
    printHeader("Figure 12", "Speedup over the baseline GPU", args);

    // --- B-Tree variants over a key-count sweep -------------------------
    std::printf("B-Tree query speedup vs CUDA baseline "
                "(%zu queries):\n", args.queries);
    std::printf("%-10s %10s %12s %10s %10s\n", "tree", "keys",
                "base(cyc)", "TTA", "TTA+");
    std::vector<double> tta_geo, ttap_geo;
    for (auto kind : {trees::BTreeKind::BTree, trees::BTreeKind::BStarTree,
                      trees::BTreeKind::BPlusTree}) {
        for (size_t keys : {args.keys / 10, args.keys, args.keys * 10}) {
            BTreeWorkload wl(kind, keys, args.queries, args.seed);
            sim::StatRegistry s0, s1, s2;
            RunMetrics base = wl.runBaseline(
                modeConfig(sim::AccelMode::BaselineGpu), s0);
            RunMetrics tta =
                wl.runAccelerated(modeConfig(sim::AccelMode::Tta), s1);
            RunMetrics ttap =
                wl.runAccelerated(modeConfig(sim::AccelMode::TtaPlus), s2);
            std::printf("%-10s %10zu %12llu %9.2fx %9.2fx\n",
                        trees::bTreeKindName(kind), keys,
                        static_cast<unsigned long long>(base.cycles),
                        speedup(base, tta), speedup(base, ttap));
            tta_geo.push_back(speedup(base, tta));
            ttap_geo.push_back(speedup(base, ttap));
        }
    }
    std::printf("%-10s %10s %12s %9.2fx %9.2fx   (paper: ~2.4x geomean, "
                "up to 5.4x)\n\n", "geomean", "-", "-", geomean(tta_geo),
                geomean(ttap_geo));

    // --- N-Body -----------------------------------------------------------
    std::printf("N-Body force-pass speedup vs CUDA baseline "
                "(%zu bodies):\n", args.bodies);
    std::printf("%-10s %12s %10s %10s %12s\n", "dims", "base(cyc)", "TTA",
                "TTA+", "TTA+fused");
    for (int dims : {2, 3}) {
        NBodyWorkload wl(dims, args.bodies, args.seed);
        sim::StatRegistry s0, s1, s2, s3;
        RunMetrics base =
            wl.runBaseline(modeConfig(sim::AccelMode::BaselineGpu), s0);
        RunMetrics tta =
            wl.runAccelerated(modeConfig(sim::AccelMode::Tta), s1);
        RunMetrics ttap =
            wl.runAccelerated(modeConfig(sim::AccelMode::TtaPlus), s2);
        RunMetrics fused = wl.runAccelerated(
            modeConfig(sim::AccelMode::TtaPlus), s3, true);
        std::printf("%-10s %12llu %9.2fx %9.2fx %11.2fx\n",
                    dims == 2 ? "NBODY-2D" : "NBODY-3D",
                    static_cast<unsigned long long>(base.cycles),
                    speedup(base, tta), speedup(base, ttap),
                    speedup(base, fused));
    }
    std::printf("(paper: 1.1-1.7x; merging the post-processing kernel "
                "adds ~1.2x, reaching ~1.9x on TTA+)\n\n");

    // --- RTNN radius search -------------------------------------------------
    std::printf("Radius search speedup vs CUDA baseline "
                "(%zu points, %zu queries):\n", args.points,
                args.queries / 4);
    std::printf("%-14s %10s\n", "config", "speedup");
    RtnnWorkload wl(args.points, args.queries / 4, 1.0f, args.seed);
    sim::StatRegistry s0;
    RunMetrics cuda =
        wl.runBaseline(modeConfig(sim::AccelMode::BaselineGpu), s0);
    struct Cfg
    {
        const char *name;
        sim::AccelMode mode;
        bool offload;
    };
    for (const Cfg &c :
         {Cfg{"RTNN (RTA)", sim::AccelMode::BaselineRta, false},
          Cfg{"RTNN (TTA)", sim::AccelMode::Tta, false},
          Cfg{"*RTNN (TTA)", sim::AccelMode::Tta, true},
          Cfg{"RTNN (TTA+)", sim::AccelMode::TtaPlus, false},
          Cfg{"*RTNN (TTA+)", sim::AccelMode::TtaPlus, true}}) {
        sim::StatRegistry stats;
        RunMetrics m =
            wl.runAccelerated(modeConfig(c.mode), stats, c.offload);
        std::printf("%-14s %9.2fx\n", c.name, speedup(cuda, m));
    }
    std::printf("(paper: RTNN beats CUDA outright; *RTNN gains up to "
                "~1.4x more by replacing the intersection shaders; "
                "unstarred RTNN slows down on TTA+)\n");
    return 0;
}
