/**
 * @file
 * Figure 12: performance of the selected applications on TTA and TTA+
 * relative to the baseline GPU (top: CUDA applications, bottom: RTA
 * applications).
 *
 * Paper expectations: up to 5.4x for B-Tree variants (geomean ~2.4x,
 * better when queries outnumber keys; B+Tree lowest), 1.1-1.7x N-Body
 * (kernel fusion adds ~1.2x, to ~1.9x), RTNN already beats CUDA on the
 * RTA and gains up to ~1.4x more from offloading the intersection
 * shaders (*RTNN); unstarred RTNN slows down on TTA+.
 */

#include "bench_common.hh"

using namespace bench;

int
main(int argc, char **argv)
{
    Args args = Args::parse(argc, argv);
    printHeader("Figure 12", "Speedup over the baseline GPU", args);

    Sweep sweep(args);
    // The baseline/TTA/TTA+ runs of one row share the identical host
    // tree: build it once, hand each run a deep copy
    // (--rebuild-device restores the old build-per-run behavior).
    static WorkloadCache cache(args.rebuildDevice == 0);

    // --- B-Tree variants over a key-count sweep -------------------------
    struct BTreeRow
    {
        trees::BTreeKind kind;
        size_t keys;
        size_t base, tta, ttap;
    };
    std::vector<BTreeRow> btree_rows;
    for (auto kind : {trees::BTreeKind::BTree, trees::BTreeKind::BStarTree,
                      trees::BTreeKind::BPlusTree}) {
        for (size_t keys : {args.keys / 10, args.keys, args.keys * 10}) {
            std::string tag = std::string("btree/") +
                              trees::bTreeKindName(kind) + "/" +
                              std::to_string(keys);
            auto build = [kind, keys, tag, &args]() {
                return cache.get<BTreeWorkload>(tag, [&] {
                    return BTreeWorkload(kind, keys, args.queries,
                                         args.seed);
                });
            };
            auto runBase = [build](const sim::Config &cfg,
                                   sim::StatRegistry &stats) {
                BTreeWorkload wl = build();
                return wl.runBaseline(cfg, stats);
            };
            auto runAccel = [build](const sim::Config &cfg,
                                    sim::StatRegistry &stats) {
                BTreeWorkload wl = build();
                return wl.runAccelerated(cfg, stats);
            };
            BTreeRow row;
            row.kind = kind;
            row.keys = keys;
            row.base = sweep.add(tag + "/base",
                                 modeConfig(sim::AccelMode::BaselineGpu),
                                 runBase);
            row.tta = sweep.add(tag + "/tta",
                                modeConfig(sim::AccelMode::Tta), runAccel);
            row.ttap = sweep.add(tag + "/ttaplus",
                                 modeConfig(sim::AccelMode::TtaPlus),
                                 runAccel);
            btree_rows.push_back(row);
        }
    }

    // --- N-Body -----------------------------------------------------------
    struct NBodyRow
    {
        int dims;
        size_t base, tta, ttap, fused;
    };
    std::vector<NBodyRow> nbody_rows;
    for (int dims : {2, 3}) {
        std::string tag = std::string("nbody/") + std::to_string(dims) +
                          "d";
        auto runBase = [dims, &args](const sim::Config &cfg,
                                     sim::StatRegistry &stats) {
            NBodyWorkload wl(dims, args.bodies, args.seed);
            return wl.runBaseline(cfg, stats);
        };
        auto runAccel = [dims, &args](bool fuse) {
            return [dims, fuse, &args](const sim::Config &cfg,
                                       sim::StatRegistry &stats) {
                NBodyWorkload wl(dims, args.bodies, args.seed);
                return wl.runAccelerated(cfg, stats, fuse);
            };
        };
        NBodyRow row;
        row.dims = dims;
        row.base = sweep.add(tag + "/base",
                             modeConfig(sim::AccelMode::BaselineGpu),
                             runBase);
        row.tta = sweep.add(tag + "/tta", modeConfig(sim::AccelMode::Tta),
                            runAccel(false));
        row.ttap = sweep.add(tag + "/ttaplus",
                             modeConfig(sim::AccelMode::TtaPlus),
                             runAccel(false));
        row.fused = sweep.add(tag + "/ttaplus-fused",
                              modeConfig(sim::AccelMode::TtaPlus),
                              runAccel(true));
        nbody_rows.push_back(row);
    }

    // --- RTNN radius search -------------------------------------------------
    auto rtnnBuild = [&args]() {
        return cache.get<RtnnWorkload>("rtnn", [&] {
            return RtnnWorkload(args.points, args.queries / 4, 1.0f,
                                args.seed);
        });
    };
    auto rtnnBase = [rtnnBuild](const sim::Config &cfg,
                                sim::StatRegistry &stats) {
        RtnnWorkload wl = rtnnBuild();
        return wl.runBaseline(cfg, stats);
    };
    auto rtnnAccel = [rtnnBuild](bool offload) {
        return [offload, rtnnBuild](const sim::Config &cfg,
                                    sim::StatRegistry &stats) {
            RtnnWorkload wl = rtnnBuild();
            return wl.runAccelerated(cfg, stats, offload);
        };
    };
    size_t rtnn_cuda = sweep.add(
        "rtnn/base", modeConfig(sim::AccelMode::BaselineGpu), rtnnBase);
    struct Cfg
    {
        const char *name;
        sim::AccelMode mode;
        bool offload;
        size_t idx;
    };
    std::vector<Cfg> rtnn_cfgs = {
        {"RTNN (RTA)", sim::AccelMode::BaselineRta, false, 0},
        {"RTNN (TTA)", sim::AccelMode::Tta, false, 0},
        {"*RTNN (TTA)", sim::AccelMode::Tta, true, 0},
        {"RTNN (TTA+)", sim::AccelMode::TtaPlus, false, 0},
        {"*RTNN (TTA+)", sim::AccelMode::TtaPlus, true, 0},
    };
    for (Cfg &c : rtnn_cfgs)
        c.idx = sweep.add(std::string("rtnn/") + c.name,
                          modeConfig(c.mode), rtnnAccel(c.offload));

    sweep.run();

    // --- Print the figure from the collected results ----------------------
    std::printf("B-Tree query speedup vs CUDA baseline "
                "(%zu queries):\n", args.queries);
    std::printf("%-10s %10s %12s %10s %10s\n", "tree", "keys",
                "base(cyc)", "TTA", "TTA+");
    std::vector<double> tta_geo, ttap_geo;
    for (const BTreeRow &row : btree_rows) {
        const RunMetrics &base = sweep[row.base];
        const RunMetrics &tta = sweep[row.tta];
        const RunMetrics &ttap = sweep[row.ttap];
        std::printf("%-10s %10zu %12llu %9.2fx %9.2fx\n",
                    trees::bTreeKindName(row.kind), row.keys,
                    static_cast<unsigned long long>(base.cycles),
                    speedup(base, tta), speedup(base, ttap));
        tta_geo.push_back(speedup(base, tta));
        ttap_geo.push_back(speedup(base, ttap));
    }
    std::printf("%-10s %10s %12s %9.2fx %9.2fx   (paper: ~2.4x geomean, "
                "up to 5.4x)\n\n", "geomean", "-", "-", geomean(tta_geo),
                geomean(ttap_geo));

    std::printf("N-Body force-pass speedup vs CUDA baseline "
                "(%zu bodies):\n", args.bodies);
    std::printf("%-10s %12s %10s %10s %12s\n", "dims", "base(cyc)", "TTA",
                "TTA+", "TTA+fused");
    for (const NBodyRow &row : nbody_rows) {
        const RunMetrics &base = sweep[row.base];
        std::printf("%-10s %12llu %9.2fx %9.2fx %11.2fx\n",
                    row.dims == 2 ? "NBODY-2D" : "NBODY-3D",
                    static_cast<unsigned long long>(base.cycles),
                    speedup(base, sweep[row.tta]),
                    speedup(base, sweep[row.ttap]),
                    speedup(base, sweep[row.fused]));
    }
    std::printf("(paper: 1.1-1.7x; merging the post-processing kernel "
                "adds ~1.2x, reaching ~1.9x on TTA+)\n\n");

    std::printf("Radius search speedup vs CUDA baseline "
                "(%zu points, %zu queries):\n", args.points,
                args.queries / 4);
    std::printf("%-14s %10s\n", "config", "speedup");
    for (const Cfg &c : rtnn_cfgs)
        std::printf("%-14s %9.2fx\n", c.name,
                    speedup(sweep[rtnn_cuda], sweep[c.idx]));
    std::printf("(paper: RTNN beats CUDA outright; *RTNN gains up to "
                "~1.4x more by replacing the intersection shaders; "
                "unstarred RTNN slows down on TTA+)\n");
    return 0;
}
