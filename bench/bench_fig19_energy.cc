/**
 * @file
 * Figure 19: end-to-end energy of TTA and TTA+ normalized to the
 * baseline GPU, broken down into compute core (execution units + memory
 * system), warp buffer accesses, and intersection units.
 *
 * Paper expectation: 15-62% energy savings for the B-Tree variants,
 * driven by the 91% dynamic-instruction reduction; N-Body spends more in
 * the OP units on TTA+ but still saves overall; for RT-pipeline
 * applications the starred optimizations offset the extra OP-unit
 * energy (19-29% savings).
 */

#include "bench_common.hh"

using namespace bench;

namespace {

void
printRow(const char *label, const power::EnergyBreakdown &e,
         double base_total)
{
    std::printf("  %-14s total %6.1f%%   (core %5.1f%%, warp-buf %5.1f%%, "
                "intersect %5.1f%%)\n",
                label, 100.0 * e.total() / base_total,
                100.0 * e.computeCore / base_total,
                100.0 * e.warpBuffer / base_total,
                100.0 * e.intersection / base_total);
}

} // namespace

int
main(int argc, char **argv)
{
    Args args = Args::parse(argc, argv);
    printHeader("Figure 19", "Energy normalized to the baseline GPU",
                args);

    Sweep sweep(args);
    struct Row
    {
        std::string app;
        size_t base, tta, ttap;
    };
    std::vector<Row> rows;

    for (auto kind : {trees::BTreeKind::BTree, trees::BTreeKind::BStarTree,
                      trees::BTreeKind::BPlusTree}) {
        auto runBase = [kind, &args](const sim::Config &cfg,
                                     sim::StatRegistry &stats) {
            BTreeWorkload wl(kind, args.keys, args.queries, args.seed);
            return wl.runBaseline(cfg, stats);
        };
        auto runAccel = [kind, &args](const sim::Config &cfg,
                                      sim::StatRegistry &stats) {
            BTreeWorkload wl(kind, args.keys, args.queries, args.seed);
            return wl.runAccelerated(cfg, stats);
        };
        std::string tag = std::string("btree/") +
                          trees::bTreeKindName(kind);
        rows.push_back(
            {trees::bTreeKindName(kind),
             sweep.add(tag + "/base",
                       modeConfig(sim::AccelMode::BaselineGpu), runBase),
             sweep.add(tag + "/tta", modeConfig(sim::AccelMode::Tta),
                       runAccel),
             sweep.add(tag + "/ttaplus",
                       modeConfig(sim::AccelMode::TtaPlus), runAccel)});
    }

    for (int dims : {2, 3}) {
        auto runBase = [dims, &args](const sim::Config &cfg,
                                     sim::StatRegistry &stats) {
            NBodyWorkload wl(dims, args.bodies, args.seed);
            return wl.runBaseline(cfg, stats);
        };
        auto runAccel = [dims, &args](const sim::Config &cfg,
                                      sim::StatRegistry &stats) {
            NBodyWorkload wl(dims, args.bodies, args.seed);
            return wl.runAccelerated(cfg, stats);
        };
        std::string tag = std::string("nbody/") + std::to_string(dims) +
                          "d";
        rows.push_back(
            {dims == 2 ? "NBODY-2D" : "NBODY-3D",
             sweep.add(tag + "/base",
                       modeConfig(sim::AccelMode::BaselineGpu), runBase),
             sweep.add(tag + "/tta", modeConfig(sim::AccelMode::Tta),
                       runAccel),
             sweep.add(tag + "/ttaplus",
                       modeConfig(sim::AccelMode::TtaPlus), runAccel)});
    }

    // RTNN, normalized to the baseline RTA rather than the GPU.
    auto rtnnRun = [&args](bool offload) {
        return [offload, &args](const sim::Config &cfg,
                                sim::StatRegistry &stats) {
            RtnnWorkload wl(args.points, args.queries / 4, 1.0f,
                            args.seed);
            return wl.runAccelerated(cfg, stats, offload);
        };
    };
    size_t rtnn_rta = sweep.add("rtnn/rta",
                                modeConfig(sim::AccelMode::BaselineRta),
                                rtnnRun(false));
    size_t rtnn_tta = sweep.add("rtnn/tta",
                                modeConfig(sim::AccelMode::Tta),
                                rtnnRun(false));
    size_t rtnn_star_tta = sweep.add("rtnn/star-tta",
                                     modeConfig(sim::AccelMode::Tta),
                                     rtnnRun(true));
    size_t rtnn_star_tp = sweep.add("rtnn/star-ttaplus",
                                    modeConfig(sim::AccelMode::TtaPlus),
                                    rtnnRun(true));

    sweep.run();

    for (const Row &row : rows) {
        double base_total = sweep[row.base].energy.total();
        std::printf("%s:\n", row.app.c_str());
        printRow("BASE", sweep[row.base].energy, base_total);
        printRow("TTA", sweep[row.tta].energy, base_total);
        printRow("TTA+", sweep[row.ttap].energy, base_total);
    }
    {
        double base_total = sweep[rtnn_rta].energy.total();
        std::printf("RTNN (vs baseline RTA):\n");
        printRow("RTA", sweep[rtnn_rta].energy, base_total);
        printRow("TTA", sweep[rtnn_tta].energy, base_total);
        printRow("*RTNN(TTA)", sweep[rtnn_star_tta].energy, base_total);
        printRow("*RTNN(TTA+)", sweep[rtnn_star_tp].energy, base_total);
    }

    std::printf("\nPaper shape check: B-Tree saves 15-62%% end-to-end "
                "energy (the instruction-count collapse of Fig 20); the "
                "starred RTNN configurations offset the added OP-unit "
                "energy with shorter runtimes.\n");
    return 0;
}
