/**
 * @file
 * Figure 19: end-to-end energy of TTA and TTA+ normalized to the
 * baseline GPU, broken down into compute core (execution units + memory
 * system), warp buffer accesses, and intersection units.
 *
 * Paper expectation: 15-62% energy savings for the B-Tree variants,
 * driven by the 91% dynamic-instruction reduction; N-Body spends more in
 * the OP units on TTA+ but still saves overall; for RT-pipeline
 * applications the starred optimizations offset the extra OP-unit
 * energy (19-29% savings).
 */

#include "bench_common.hh"

using namespace bench;

namespace {

void
printRow(const char *label, const power::EnergyBreakdown &e,
         double base_total)
{
    std::printf("  %-14s total %6.1f%%   (core %5.1f%%, warp-buf %5.1f%%, "
                "intersect %5.1f%%)\n",
                label, 100.0 * e.total() / base_total,
                100.0 * e.computeCore / base_total,
                100.0 * e.warpBuffer / base_total,
                100.0 * e.intersection / base_total);
}

} // namespace

int
main(int argc, char **argv)
{
    Args args = Args::parse(argc, argv);
    printHeader("Figure 19", "Energy normalized to the baseline GPU",
                args);

    for (auto kind : {trees::BTreeKind::BTree, trees::BTreeKind::BStarTree,
                      trees::BTreeKind::BPlusTree}) {
        BTreeWorkload wl(kind, args.keys, args.queries, args.seed);
        sim::StatRegistry s0, s1, s2;
        RunMetrics base =
            wl.runBaseline(modeConfig(sim::AccelMode::BaselineGpu), s0);
        RunMetrics tta =
            wl.runAccelerated(modeConfig(sim::AccelMode::Tta), s1);
        RunMetrics ttap =
            wl.runAccelerated(modeConfig(sim::AccelMode::TtaPlus), s2);
        std::printf("%s:\n", trees::bTreeKindName(kind));
        printRow("BASE", base.energy, base.energy.total());
        printRow("TTA", tta.energy, base.energy.total());
        printRow("TTA+", ttap.energy, base.energy.total());
    }

    for (int dims : {2, 3}) {
        NBodyWorkload wl(dims, args.bodies, args.seed);
        sim::StatRegistry s0, s1, s2;
        RunMetrics base =
            wl.runBaseline(modeConfig(sim::AccelMode::BaselineGpu), s0);
        RunMetrics tta =
            wl.runAccelerated(modeConfig(sim::AccelMode::Tta), s1);
        RunMetrics ttap =
            wl.runAccelerated(modeConfig(sim::AccelMode::TtaPlus), s2);
        std::printf("%s:\n", dims == 2 ? "NBODY-2D" : "NBODY-3D");
        printRow("BASE", base.energy, base.energy.total());
        printRow("TTA", tta.energy, base.energy.total());
        printRow("TTA+", ttap.energy, base.energy.total());
    }

    {
        RtnnWorkload wl(args.points, args.queries / 4, 1.0f, args.seed);
        sim::StatRegistry s0, s1, s2, s3;
        RunMetrics base = wl.runAccelerated(
            modeConfig(sim::AccelMode::BaselineRta), s0, false);
        RunMetrics tta =
            wl.runAccelerated(modeConfig(sim::AccelMode::Tta), s1, false);
        RunMetrics star_tta =
            wl.runAccelerated(modeConfig(sim::AccelMode::Tta), s2, true);
        RunMetrics star_tp = wl.runAccelerated(
            modeConfig(sim::AccelMode::TtaPlus), s3, true);
        std::printf("RTNN (vs baseline RTA):\n");
        printRow("RTA", base.energy, base.energy.total());
        printRow("TTA", tta.energy, base.energy.total());
        printRow("*RTNN(TTA)", star_tta.energy, base.energy.total());
        printRow("*RTNN(TTA+)", star_tp.energy, base.energy.total());
    }

    std::printf("\nPaper shape check: B-Tree saves 15-62%% end-to-end "
                "energy (the instruction-count collapse of Fig 20); the "
                "starred RTNN configurations offset the added OP-unit "
                "energy with shorter runtimes.\n");
    return 0;
}
