/**
 * @file
 * Extension experiments beyond the paper's evaluation:
 *
 *  1. R-Tree spatial range queries — the index structure the paper's
 *     introduction motivates but does not evaluate. The rectangle
 *     overlap test runs on the TTA's min/max comparator datapath and as
 *     a 14-uop program on TTA+.
 *  2. A one-level child prefetcher in the RTA memory scheduler — the
 *     concrete version of the paper's "Perf. RT" limit (Fig 17) and its
 *     treelet-prefetching citation [16].
 */

#include "bench_common.hh"

#include "workloads/rtree_workload.hh"

using namespace bench;

int
main(int argc, char **argv)
{
    Args args = Args::parse(argc, argv);
    printHeader("Extensions", "R-Tree range queries + child prefetcher",
                args);

    Sweep sweep(args);

    // --- R-Tree -----------------------------------------------------------
    auto rtreeBase = [&args](const sim::Config &cfg,
                             sim::StatRegistry &stats) {
        RTreeWorkload wl(args.keys, args.queries, 2.0f, args.seed);
        return wl.runBaseline(cfg, stats);
    };
    auto rtreeAccel = [&args](const sim::Config &cfg,
                              sim::StatRegistry &stats) {
        RTreeWorkload wl(args.keys, args.queries, 2.0f, args.seed);
        return wl.runAccelerated(cfg, stats);
    };
    size_t rtree_base = sweep.add(
        "rtree/base", modeConfig(sim::AccelMode::BaselineGpu), rtreeBase);
    const sim::AccelMode kModes[] = {sim::AccelMode::Tta,
                                     sim::AccelMode::TtaPlus};
    std::vector<size_t> rtree_accel;
    for (auto mode : kModes)
        rtree_accel.push_back(
            sweep.add(std::string("rtree/") + sim::accelModeName(mode),
                      modeConfig(mode), rtreeAccel));

    // --- Child prefetcher ---------------------------------------------------
    struct Variant
    {
        const char *name;
        bool prefetch;
        bool perfect;
    };
    const Variant kVariants[] = {{"no prefetch", false, false},
                                 {"child prefetch", true, false},
                                 {"Perf.RT (limit)", false, true}};
    std::vector<size_t> prefetch_runs;
    for (const Variant &v : kVariants) {
        sim::Config cfg = modeConfig(sim::AccelMode::Tta);
        cfg.rtaChildPrefetch = v.prefetch;
        cfg.perfectNodeFetch = v.perfect;
        prefetch_runs.push_back(sweep.add(
            std::string("prefetch/") + v.name, cfg,
            [&args](const sim::Config &c, sim::StatRegistry &stats) {
                BTreeWorkload wl(trees::BTreeKind::BTree, args.keys,
                                 args.queries, args.seed);
                return wl.runAccelerated(c, stats);
            }));
    }

    sweep.run();

    std::printf("R-Tree range queries (%zu objects, %zu queries):\n",
                args.keys, args.queries);
    const RunMetrics &base = sweep[rtree_base];
    std::printf("  %-6s %10llu cycles   simt_eff %4.1f%%\n", "GPU",
                static_cast<unsigned long long>(base.cycles),
                100.0 * base.simtEfficiency);
    for (size_t i = 0; i < rtree_accel.size(); ++i) {
        const RunMetrics &m = sweep[rtree_accel[i]];
        std::printf("  %-6s %10llu cycles   %5.2fx\n",
                    sim::accelModeName(kModes[i]),
                    static_cast<unsigned long long>(m.cycles),
                    speedup(base, m));
    }

    std::printf("\nOne-level child prefetcher (B-Tree %zu keys / "
                "%zu queries, TTA):\n", args.keys, args.queries);
    sim::Cycle baseline_cycles = sweep[prefetch_runs[0]].cycles;
    for (size_t i = 0; i < prefetch_runs.size(); ++i) {
        const RunMetrics &m = sweep[prefetch_runs[i]];
        std::printf("  %-18s %10llu cycles   %5.2fx   "
                    "(%llu prefetches)\n",
                    kVariants[i].name,
                    static_cast<unsigned long long>(m.cycles),
                    static_cast<double>(baseline_cycles) / m.cycles,
                    static_cast<unsigned long long>(
                        sweep.record(prefetch_runs[i])
                            .stats.counterValue("rta.prefetches")));
    }

    std::printf("\nTakeaways: the TTA generalizes to R-Tree range "
                "queries with no hardware beyond the B-Tree additions; "
                "a one-level prefetcher recovers part of the Perf.RT "
                "headroom of Fig 17.\n");
    return 0;
}
