/**
 * @file
 * Extension experiments beyond the paper's evaluation:
 *
 *  1. R-Tree spatial range queries — the index structure the paper's
 *     introduction motivates but does not evaluate. The rectangle
 *     overlap test runs on the TTA's min/max comparator datapath and as
 *     a 14-uop program on TTA+.
 *  2. A one-level child prefetcher in the RTA memory scheduler — the
 *     concrete version of the paper's "Perf. RT" limit (Fig 17) and its
 *     treelet-prefetching citation [16].
 */

#include "bench_common.hh"

#include "workloads/rtree_workload.hh"

using namespace bench;

int
main(int argc, char **argv)
{
    Args args = Args::parse(argc, argv);
    printHeader("Extensions", "R-Tree range queries + child prefetcher",
                args);

    // --- R-Tree -----------------------------------------------------------
    std::printf("R-Tree range queries (%zu objects, %zu queries):\n",
                args.keys, args.queries);
    RTreeWorkload rtree(args.keys, args.queries, 2.0f, args.seed);
    sim::StatRegistry s0;
    RunMetrics base = rtree.runBaseline(
        modeConfig(sim::AccelMode::BaselineGpu), s0);
    std::printf("  %-6s %10llu cycles   simt_eff %4.1f%%\n", "GPU",
                static_cast<unsigned long long>(base.cycles),
                100.0 * base.simtEfficiency);
    for (auto mode : {sim::AccelMode::Tta, sim::AccelMode::TtaPlus}) {
        sim::StatRegistry stats;
        RunMetrics m = rtree.runAccelerated(modeConfig(mode), stats);
        std::printf("  %-6s %10llu cycles   %5.2fx\n",
                    sim::accelModeName(mode),
                    static_cast<unsigned long long>(m.cycles),
                    speedup(base, m));
    }

    // --- Child prefetcher ---------------------------------------------------
    std::printf("\nOne-level child prefetcher (B-Tree %zu keys / "
                "%zu queries, TTA):\n", args.keys, args.queries);
    BTreeWorkload btree(trees::BTreeKind::BTree, args.keys, args.queries,
                        args.seed);
    struct Variant
    {
        const char *name;
        bool prefetch;
        bool perfect;
    };
    sim::Cycle baseline_cycles = 0;
    for (const Variant &v : {Variant{"no prefetch", false, false},
                             Variant{"child prefetch", true, false},
                             Variant{"Perf.RT (limit)", false, true}}) {
        sim::Config cfg = modeConfig(sim::AccelMode::Tta);
        cfg.rtaChildPrefetch = v.prefetch;
        cfg.perfectNodeFetch = v.perfect;
        sim::StatRegistry stats;
        RunMetrics m = btree.runAccelerated(cfg, stats);
        if (!baseline_cycles)
            baseline_cycles = m.cycles;
        std::printf("  %-18s %10llu cycles   %5.2fx   "
                    "(%llu prefetches)\n",
                    v.name, static_cast<unsigned long long>(m.cycles),
                    static_cast<double>(baseline_cycles) / m.cycles,
                    static_cast<unsigned long long>(
                        stats.counterValue("rta.prefetches")));
    }

    std::printf("\nTakeaways: the TTA generalizes to R-Tree range "
                "queries with no hardware beyond the B-Tree additions; "
                "a one-level prefetcher recovers part of the Perf.RT "
                "headroom of Fig 17.\n");
    return 0;
}
