/**
 * @file
 * Figure 1: SIMT efficiency and DRAM bandwidth utilization of tree
 * traversal applications on GPUs with and without TTAs.
 *
 * Paper expectation: B-Tree variants and radius search show low SIMT
 * efficiency and low DRAM utilization on the baseline GPU; N-Body shows
 * high SIMT efficiency (its CUDA kernel is warp-synchronous) but still
 * low DRAM utilization; the TTA raises DRAM utilization by keeping many
 * more traversals in flight.
 */

#include "bench_common.hh"

using namespace bench;

int
main(int argc, char **argv)
{
    Args args = Args::parse(argc, argv);
    printHeader("Figure 1",
                "SIMT efficiency / DRAM bandwidth utilization, baseline "
                "GPU vs TTA", args);
    std::printf("%-12s %14s %14s %14s\n", "app", "simt_eff(GPU)",
                "dram_util(GPU)", "dram_util(TTA)");

    auto row = [&](const char *name, const RunMetrics &base,
                   const RunMetrics &tta) {
        std::printf("%-12s %13.1f%% %13.1f%% %13.1f%%\n", name,
                    100.0 * base.simtEfficiency,
                    100.0 * base.dramUtilization,
                    100.0 * tta.dramUtilization);
    };

    for (auto kind : {trees::BTreeKind::BTree, trees::BTreeKind::BStarTree,
                      trees::BTreeKind::BPlusTree}) {
        BTreeWorkload wl(kind, args.keys, args.queries, args.seed);
        sim::StatRegistry s0, s1;
        RunMetrics base =
            wl.runBaseline(modeConfig(sim::AccelMode::BaselineGpu), s0);
        RunMetrics tta =
            wl.runAccelerated(modeConfig(sim::AccelMode::Tta), s1);
        row(trees::bTreeKindName(kind), base, tta);
    }

    for (int dims : {2, 3}) {
        NBodyWorkload wl(dims, args.bodies, args.seed);
        sim::StatRegistry s0, s1;
        RunMetrics base =
            wl.runBaseline(modeConfig(sim::AccelMode::BaselineGpu), s0);
        RunMetrics tta =
            wl.runAccelerated(modeConfig(sim::AccelMode::Tta), s1);
        row(dims == 2 ? "NBODY-2D" : "NBODY-3D", base, tta);
    }

    {
        RtnnWorkload wl(args.points, args.queries / 4, 1.0f, args.seed);
        sim::StatRegistry s0, s1;
        RunMetrics base =
            wl.runBaseline(modeConfig(sim::AccelMode::BaselineGpu), s0);
        RunMetrics tta = wl.runAccelerated(
            modeConfig(sim::AccelMode::Tta), s1, true);
        row("RTNN", base, tta);
    }

    {
        // Ray tracing without the RTA: the divergent SIMT-core tracer.
        RayTracingWorkload wl(SceneKind::SponzaAo, args.res, args.res,
                              args.seed);
        sim::StatRegistry s0, s1;
        RunMetrics base = wl.runBaselineCores(
            modeConfig(sim::AccelMode::BaselineGpu), s0);
        RunMetrics rta = wl.runAccelerated(
            modeConfig(sim::AccelMode::BaselineRta), s1);
        row("RAYTRACE", base, rta);
    }

    std::printf("\nPaper shape check: index/radius searches diverge "
                "(low SIMT eff), N-Body's warp-synchronous kernel does "
                "not; the accelerator raises DRAM utilization.\n");
    return 0;
}
