/**
 * @file
 * Figure 1: SIMT efficiency and DRAM bandwidth utilization of tree
 * traversal applications on GPUs with and without TTAs.
 *
 * Paper expectation: B-Tree variants and radius search show low SIMT
 * efficiency and low DRAM utilization on the baseline GPU; N-Body shows
 * high SIMT efficiency (its CUDA kernel is warp-synchronous) but still
 * low DRAM utilization; the TTA raises DRAM utilization by keeping many
 * more traversals in flight.
 */

#include "bench_common.hh"

using namespace bench;

int
main(int argc, char **argv)
{
    Args args = Args::parse(argc, argv);
    printHeader("Figure 1",
                "SIMT efficiency / DRAM bandwidth utilization, baseline "
                "GPU vs TTA", args);

    Sweep sweep(args);
    struct Row
    {
        std::string app;
        size_t base, tta;
    };
    std::vector<Row> rows;

    for (auto kind : {trees::BTreeKind::BTree, trees::BTreeKind::BStarTree,
                      trees::BTreeKind::BPlusTree}) {
        auto runBase = [kind, &args](const sim::Config &cfg,
                                     sim::StatRegistry &stats) {
            BTreeWorkload wl(kind, args.keys, args.queries, args.seed);
            return wl.runBaseline(cfg, stats);
        };
        auto runTta = [kind, &args](const sim::Config &cfg,
                                    sim::StatRegistry &stats) {
            BTreeWorkload wl(kind, args.keys, args.queries, args.seed);
            return wl.runAccelerated(cfg, stats);
        };
        std::string tag = std::string("btree/") +
                          trees::bTreeKindName(kind);
        rows.push_back(
            {trees::bTreeKindName(kind),
             sweep.add(tag + "/base",
                       modeConfig(sim::AccelMode::BaselineGpu), runBase),
             sweep.add(tag + "/tta", modeConfig(sim::AccelMode::Tta),
                       runTta)});
    }

    for (int dims : {2, 3}) {
        auto runBase = [dims, &args](const sim::Config &cfg,
                                     sim::StatRegistry &stats) {
            NBodyWorkload wl(dims, args.bodies, args.seed);
            return wl.runBaseline(cfg, stats);
        };
        auto runTta = [dims, &args](const sim::Config &cfg,
                                    sim::StatRegistry &stats) {
            NBodyWorkload wl(dims, args.bodies, args.seed);
            return wl.runAccelerated(cfg, stats);
        };
        std::string app = dims == 2 ? "NBODY-2D" : "NBODY-3D";
        std::string tag = std::string("nbody/") + std::to_string(dims) +
                          "d";
        rows.push_back(
            {app,
             sweep.add(tag + "/base",
                       modeConfig(sim::AccelMode::BaselineGpu), runBase),
             sweep.add(tag + "/tta", modeConfig(sim::AccelMode::Tta),
                       runTta)});
    }

    {
        auto runBase = [&args](const sim::Config &cfg,
                               sim::StatRegistry &stats) {
            RtnnWorkload wl(args.points, args.queries / 4, 1.0f,
                            args.seed);
            return wl.runBaseline(cfg, stats);
        };
        auto runTta = [&args](const sim::Config &cfg,
                              sim::StatRegistry &stats) {
            RtnnWorkload wl(args.points, args.queries / 4, 1.0f,
                            args.seed);
            return wl.runAccelerated(cfg, stats, true);
        };
        rows.push_back(
            {"RTNN",
             sweep.add("rtnn/base",
                       modeConfig(sim::AccelMode::BaselineGpu), runBase),
             sweep.add("rtnn/tta", modeConfig(sim::AccelMode::Tta),
                       runTta)});
    }

    {
        // Ray tracing without the RTA: the divergent SIMT-core tracer.
        auto runBase = [&args](const sim::Config &cfg,
                               sim::StatRegistry &stats) {
            RayTracingWorkload wl(SceneKind::SponzaAo, args.res, args.res,
                                  args.seed);
            return wl.runBaselineCores(cfg, stats);
        };
        auto runRta = [&args](const sim::Config &cfg,
                              sim::StatRegistry &stats) {
            RayTracingWorkload wl(SceneKind::SponzaAo, args.res, args.res,
                                  args.seed);
            return wl.runAccelerated(cfg, stats);
        };
        rows.push_back(
            {"RAYTRACE",
             sweep.add("raytrace/base",
                       modeConfig(sim::AccelMode::BaselineGpu), runBase),
             sweep.add("raytrace/rta",
                       modeConfig(sim::AccelMode::BaselineRta), runRta)});
    }

    sweep.run();

    std::printf("%-12s %14s %14s %14s\n", "app", "simt_eff(GPU)",
                "dram_util(GPU)", "dram_util(TTA)");
    for (const Row &row : rows) {
        const RunMetrics &base = sweep[row.base];
        const RunMetrics &tta = sweep[row.tta];
        std::printf("%-12s %13.1f%% %13.1f%% %13.1f%%\n", row.app.c_str(),
                    100.0 * base.simtEfficiency,
                    100.0 * base.dramUtilization,
                    100.0 * tta.dramUtilization);
    }

    std::printf("\nPaper shape check: index/radius searches diverge "
                "(low SIMT eff), N-Body's warp-synchronous kernel does "
                "not; the accelerator raises DRAM utilization.\n");
    return 0;
}
