# Empty dependencies file for radius_search.
# This may be replaced when dependencies are built.
