file(REMOVE_RECURSE
  "CMakeFiles/radius_search.dir/radius_search.cpp.o"
  "CMakeFiles/radius_search.dir/radius_search.cpp.o.d"
  "radius_search"
  "radius_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radius_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
