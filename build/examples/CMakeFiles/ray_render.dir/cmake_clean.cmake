file(REMOVE_RECURSE
  "CMakeFiles/ray_render.dir/ray_render.cpp.o"
  "CMakeFiles/ray_render.dir/ray_render.cpp.o.d"
  "ray_render"
  "ray_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ray_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
