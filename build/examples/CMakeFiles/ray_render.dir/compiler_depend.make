# Empty compiler generated dependencies file for ray_render.
# This may be replaced when dependencies are built.
