file(REMOVE_RECURSE
  "CMakeFiles/db_index.dir/db_index.cpp.o"
  "CMakeFiles/db_index.dir/db_index.cpp.o.d"
  "db_index"
  "db_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
