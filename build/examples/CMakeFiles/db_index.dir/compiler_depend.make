# Empty compiler generated dependencies file for db_index.
# This may be replaced when dependencies are built.
