file(REMOVE_RECURSE
  "CMakeFiles/test_rta_unit.dir/test_rta_unit.cc.o"
  "CMakeFiles/test_rta_unit.dir/test_rta_unit.cc.o.d"
  "test_rta_unit"
  "test_rta_unit.pdb"
  "test_rta_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rta_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
