# Empty dependencies file for test_rta_unit.
# This may be replaced when dependencies are built.
