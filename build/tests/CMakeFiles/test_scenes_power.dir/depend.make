# Empty dependencies file for test_scenes_power.
# This may be replaced when dependencies are built.
