file(REMOVE_RECURSE
  "CMakeFiles/test_scenes_power.dir/test_scenes_power.cc.o"
  "CMakeFiles/test_scenes_power.dir/test_scenes_power.cc.o.d"
  "test_scenes_power"
  "test_scenes_power.pdb"
  "test_scenes_power[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scenes_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
