# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_geom[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_gpu[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_rta_unit[1]_include.cmake")
include("/root/repo/build/tests/test_rtree[1]_include.cmake")
include("/root/repo/build/tests/test_determinism[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_trees[1]_include.cmake")
include("/root/repo/build/tests/test_accel[1]_include.cmake")
include("/root/repo/build/tests/test_scenes_power[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
