file(REMOVE_RECURSE
  "libtta.a"
)
