# Empty compiler generated dependencies file for tta.
# This may be replaced when dependencies are built.
