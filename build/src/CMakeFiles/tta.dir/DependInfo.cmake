
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/tta_api.cc" "src/CMakeFiles/tta.dir/api/tta_api.cc.o" "gcc" "src/CMakeFiles/tta.dir/api/tta_api.cc.o.d"
  "/root/repo/src/geom/intersect.cc" "src/CMakeFiles/tta.dir/geom/intersect.cc.o" "gcc" "src/CMakeFiles/tta.dir/geom/intersect.cc.o.d"
  "/root/repo/src/gpu/core.cc" "src/CMakeFiles/tta.dir/gpu/core.cc.o" "gcc" "src/CMakeFiles/tta.dir/gpu/core.cc.o.d"
  "/root/repo/src/gpu/gpu.cc" "src/CMakeFiles/tta.dir/gpu/gpu.cc.o" "gcc" "src/CMakeFiles/tta.dir/gpu/gpu.cc.o.d"
  "/root/repo/src/gpu/isa.cc" "src/CMakeFiles/tta.dir/gpu/isa.cc.o" "gcc" "src/CMakeFiles/tta.dir/gpu/isa.cc.o.d"
  "/root/repo/src/gpu/kernel.cc" "src/CMakeFiles/tta.dir/gpu/kernel.cc.o" "gcc" "src/CMakeFiles/tta.dir/gpu/kernel.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/tta.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/tta.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/coalescer.cc" "src/CMakeFiles/tta.dir/mem/coalescer.cc.o" "gcc" "src/CMakeFiles/tta.dir/mem/coalescer.cc.o.d"
  "/root/repo/src/mem/memsys.cc" "src/CMakeFiles/tta.dir/mem/memsys.cc.o" "gcc" "src/CMakeFiles/tta.dir/mem/memsys.cc.o.d"
  "/root/repo/src/power/area.cc" "src/CMakeFiles/tta.dir/power/area.cc.o" "gcc" "src/CMakeFiles/tta.dir/power/area.cc.o.d"
  "/root/repo/src/power/energy.cc" "src/CMakeFiles/tta.dir/power/energy.cc.o" "gcc" "src/CMakeFiles/tta.dir/power/energy.cc.o.d"
  "/root/repo/src/rta/rta_unit.cc" "src/CMakeFiles/tta.dir/rta/rta_unit.cc.o" "gcc" "src/CMakeFiles/tta.dir/rta/rta_unit.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/tta.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/tta.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/tta.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/tta.dir/sim/logging.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/tta.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/tta.dir/sim/stats.cc.o.d"
  "/root/repo/src/sim/ticked.cc" "src/CMakeFiles/tta.dir/sim/ticked.cc.o" "gcc" "src/CMakeFiles/tta.dir/sim/ticked.cc.o.d"
  "/root/repo/src/trees/btree.cc" "src/CMakeFiles/tta.dir/trees/btree.cc.o" "gcc" "src/CMakeFiles/tta.dir/trees/btree.cc.o.d"
  "/root/repo/src/trees/bvh.cc" "src/CMakeFiles/tta.dir/trees/bvh.cc.o" "gcc" "src/CMakeFiles/tta.dir/trees/bvh.cc.o.d"
  "/root/repo/src/trees/octree.cc" "src/CMakeFiles/tta.dir/trees/octree.cc.o" "gcc" "src/CMakeFiles/tta.dir/trees/octree.cc.o.d"
  "/root/repo/src/trees/pointcloud.cc" "src/CMakeFiles/tta.dir/trees/pointcloud.cc.o" "gcc" "src/CMakeFiles/tta.dir/trees/pointcloud.cc.o.d"
  "/root/repo/src/trees/rtree.cc" "src/CMakeFiles/tta.dir/trees/rtree.cc.o" "gcc" "src/CMakeFiles/tta.dir/trees/rtree.cc.o.d"
  "/root/repo/src/tta/query_key_unit.cc" "src/CMakeFiles/tta.dir/tta/query_key_unit.cc.o" "gcc" "src/CMakeFiles/tta.dir/tta/query_key_unit.cc.o.d"
  "/root/repo/src/ttaplus/engine.cc" "src/CMakeFiles/tta.dir/ttaplus/engine.cc.o" "gcc" "src/CMakeFiles/tta.dir/ttaplus/engine.cc.o.d"
  "/root/repo/src/ttaplus/program.cc" "src/CMakeFiles/tta.dir/ttaplus/program.cc.o" "gcc" "src/CMakeFiles/tta.dir/ttaplus/program.cc.o.d"
  "/root/repo/src/workloads/btree_workload.cc" "src/CMakeFiles/tta.dir/workloads/btree_workload.cc.o" "gcc" "src/CMakeFiles/tta.dir/workloads/btree_workload.cc.o.d"
  "/root/repo/src/workloads/nbody_workload.cc" "src/CMakeFiles/tta.dir/workloads/nbody_workload.cc.o" "gcc" "src/CMakeFiles/tta.dir/workloads/nbody_workload.cc.o.d"
  "/root/repo/src/workloads/raytracing_workload.cc" "src/CMakeFiles/tta.dir/workloads/raytracing_workload.cc.o" "gcc" "src/CMakeFiles/tta.dir/workloads/raytracing_workload.cc.o.d"
  "/root/repo/src/workloads/rtnn_workload.cc" "src/CMakeFiles/tta.dir/workloads/rtnn_workload.cc.o" "gcc" "src/CMakeFiles/tta.dir/workloads/rtnn_workload.cc.o.d"
  "/root/repo/src/workloads/rtree_workload.cc" "src/CMakeFiles/tta.dir/workloads/rtree_workload.cc.o" "gcc" "src/CMakeFiles/tta.dir/workloads/rtree_workload.cc.o.d"
  "/root/repo/src/workloads/scenes.cc" "src/CMakeFiles/tta.dir/workloads/scenes.cc.o" "gcc" "src/CMakeFiles/tta.dir/workloads/scenes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
