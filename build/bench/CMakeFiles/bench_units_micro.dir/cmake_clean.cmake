file(REMOVE_RECURSE
  "CMakeFiles/bench_units_micro.dir/bench_units_micro.cc.o"
  "CMakeFiles/bench_units_micro.dir/bench_units_micro.cc.o.d"
  "bench_units_micro"
  "bench_units_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_units_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
