# Empty dependencies file for bench_units_micro.
# This may be replaced when dependencies are built.
