# Empty compiler generated dependencies file for bench_fig01_simt_efficiency.
# This may be replaced when dependencies are built.
