file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_simt_efficiency.dir/bench_fig01_simt_efficiency.cc.o"
  "CMakeFiles/bench_fig01_simt_efficiency.dir/bench_fig01_simt_efficiency.cc.o.d"
  "bench_fig01_simt_efficiency"
  "bench_fig01_simt_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_simt_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
