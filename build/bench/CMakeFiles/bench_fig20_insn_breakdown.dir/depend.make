# Empty dependencies file for bench_fig20_insn_breakdown.
# This may be replaced when dependencies are built.
