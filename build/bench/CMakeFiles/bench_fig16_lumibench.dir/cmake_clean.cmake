file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_lumibench.dir/bench_fig16_lumibench.cc.o"
  "CMakeFiles/bench_fig16_lumibench.dir/bench_fig16_lumibench.cc.o.d"
  "bench_fig16_lumibench"
  "bench_fig16_lumibench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_lumibench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
