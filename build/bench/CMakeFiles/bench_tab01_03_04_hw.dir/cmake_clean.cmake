file(REMOVE_RECURSE
  "CMakeFiles/bench_tab01_03_04_hw.dir/bench_tab01_03_04_hw.cc.o"
  "CMakeFiles/bench_tab01_03_04_hw.dir/bench_tab01_03_04_hw.cc.o.d"
  "bench_tab01_03_04_hw"
  "bench_tab01_03_04_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab01_03_04_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
