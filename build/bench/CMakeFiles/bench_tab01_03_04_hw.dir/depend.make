# Empty dependencies file for bench_tab01_03_04_hw.
# This may be replaced when dependencies are built.
