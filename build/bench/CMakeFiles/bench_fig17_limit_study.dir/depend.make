# Empty dependencies file for bench_fig17_limit_study.
# This may be replaced when dependencies are built.
