# Empty dependencies file for bench_fig18_opunit.
# This may be replaced when dependencies are built.
