file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_opunit.dir/bench_fig18_opunit.cc.o"
  "CMakeFiles/bench_fig18_opunit.dir/bench_fig18_opunit.cc.o.d"
  "bench_fig18_opunit"
  "bench_fig18_opunit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_opunit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
