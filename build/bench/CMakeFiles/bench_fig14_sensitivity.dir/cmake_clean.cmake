file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_sensitivity.dir/bench_fig14_sensitivity.cc.o"
  "CMakeFiles/bench_fig14_sensitivity.dir/bench_fig14_sensitivity.cc.o.d"
  "bench_fig14_sensitivity"
  "bench_fig14_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
