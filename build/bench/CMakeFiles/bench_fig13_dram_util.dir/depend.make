# Empty dependencies file for bench_fig13_dram_util.
# This may be replaced when dependencies are built.
