file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_roofline.dir/bench_fig06_roofline.cc.o"
  "CMakeFiles/bench_fig06_roofline.dir/bench_fig06_roofline.cc.o.d"
  "bench_fig06_roofline"
  "bench_fig06_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
