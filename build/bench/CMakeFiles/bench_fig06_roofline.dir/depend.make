# Empty dependencies file for bench_fig06_roofline.
# This may be replaced when dependencies are built.
