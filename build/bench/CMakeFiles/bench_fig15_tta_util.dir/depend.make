# Empty dependencies file for bench_fig15_tta_util.
# This may be replaced when dependencies are built.
