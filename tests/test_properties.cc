/**
 * @file
 * Cross-module property tests: physical and structural invariants that
 * must hold across parameter sweeps (radius monotonicity, Barnes-Hut
 * accuracy vs theta, query hit-rate behaviour, BVH quality).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "geom/intersect.hh"
#include "sim/rng.hh"
#include "trees/octree.hh"
#include "trees/pointcloud.hh"
#include "workloads/btree_workload.hh"

using namespace tta;
using namespace ::tta::workloads;

// --- Radius search: monotonicity in the radius ---------------------------

class RadiusSweep : public ::testing::TestWithParam<float>
{};

TEST_P(RadiusSweep, CountsGrowWithRadius)
{
    float radius = GetParam();
    auto cloud = trees::PointCloud::generateLidarLike(6000, 3);
    trees::RadiusSearchIndex small_idx(cloud, radius);
    trees::RadiusSearchIndex big_idx(cloud, radius * 2.0f);
    sim::Rng rng(9);
    for (int q = 0; q < 40; ++q) {
        geom::Vec3 p = cloud.points[rng.nextBounded(cloud.points.size())];
        size_t small_n = small_idx.query(p).size();
        size_t big_n = big_idx.query(p).size();
        EXPECT_LE(small_n, big_n);
        // The query point itself is always within any positive radius.
        EXPECT_GE(small_n, 1u);
    }
}

INSTANTIATE_TEST_SUITE_P(Radii, RadiusSweep,
                         ::testing::Values(0.25f, 0.5f, 1.0f, 2.0f));

// --- Barnes-Hut: accuracy improves as theta shrinks ----------------------

TEST(BarnesHutAccuracy, ErrorDecreasesWithTheta)
{
    sim::Rng rng(11);
    std::vector<trees::BhBody> bodies;
    for (int i = 0; i < 512; ++i) {
        trees::BhBody b;
        b.pos = {4.0f * rng.gaussian(), 4.0f * rng.gaussian(),
                 4.0f * rng.gaussian()};
        b.mass = rng.uniform(0.5f, 2.0f);
        bodies.push_back(b);
    }
    // theta ~ 0: effectively exact.
    trees::BarnesHutTree exact(3, bodies, 1e-4f);
    trees::BarnesHutTree mid(3, bodies, 0.5f);
    trees::BarnesHutTree loose(3, bodies, 1.2f);

    double err_mid = 0.0, err_loose = 0.0;
    const auto &ordered = exact.orderedBodies();
    for (size_t q = 0; q < ordered.size(); q += 16) {
        geom::Vec3 truth = exact.referenceForce(ordered[q].pos).accel;
        geom::Vec3 m = mid.referenceForce(ordered[q].pos).accel;
        geom::Vec3 l = loose.referenceForce(ordered[q].pos).accel;
        double norm = geom::length(truth) + 1e-3;
        err_mid += geom::length(m - truth) / norm;
        err_loose += geom::length(l - truth) / norm;
    }
    EXPECT_LT(err_mid, err_loose);
    EXPECT_LT(err_mid / (ordered.size() / 16), 0.05); // <5% mean error
}

TEST(BarnesHutAccuracy, MomentumNearlyConserved)
{
    // Sum of m*a over all bodies ~ 0 for internal forces (Newton's third
    // law holds exactly for the direct terms and approximately for the
    // multipole approximations).
    sim::Rng rng(13);
    std::vector<trees::BhBody> bodies;
    for (int i = 0; i < 1024; ++i) {
        trees::BhBody b;
        b.pos = {3.0f * rng.gaussian(), 3.0f * rng.gaussian(),
                 3.0f * rng.gaussian()};
        b.mass = rng.uniform(0.5f, 2.0f);
        bodies.push_back(b);
    }
    trees::BarnesHutTree tree(3, bodies, 0.5f);
    geom::Vec3 net(0.0f);
    double total = 0.0;
    for (const auto &b : tree.orderedBodies()) {
        geom::Vec3 a = tree.referenceForce(b.pos).accel;
        net += a * b.mass;
        total += static_cast<double>(geom::length(a)) * b.mass;
    }
    // Net force is a small fraction of the total force magnitude.
    EXPECT_LT(geom::length(net), 0.02 * total);
}

// --- B-Tree workload: hit-rate extremes ---------------------------------

class HitRate : public ::testing::TestWithParam<double>
{};

TEST_P(HitRate, AcceleratedRunStaysCorrect)
{
    BTreeWorkload wl(trees::BTreeKind::BTree, 5000, 512, 3, GetParam());
    sim::Config cfg;
    cfg.accelMode = sim::AccelMode::Tta;
    sim::StatRegistry stats;
    // runAccelerated panics internally on any result mismatch.
    RunMetrics m = wl.runAccelerated(cfg, stats);
    EXPECT_GT(m.cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(Rates, HitRate,
                         ::testing::Values(0.0, 0.25, 0.75, 1.0));

// --- BVH: SAH build beats scrambled order on traversal work -----------------

TEST(BvhQuality, SahPrunesMostWork)
{
    sim::Rng rng(17);
    std::vector<geom::Aabb> boxes;
    for (int i = 0; i < 2000; ++i) {
        geom::Vec3 p = {rng.uniform(-20, 20), rng.uniform(-20, 20),
                        rng.uniform(-20, 20)};
        boxes.emplace_back(p, p + geom::Vec3(0.3f));
    }
    trees::Bvh bvh;
    bvh.build(boxes, 2);
    // A pencil of rays: the mean number of leaf tests must be a tiny
    // fraction of the primitive count (the point of the hierarchy).
    uint64_t tests = 0;
    int n_rays = 100;
    for (int i = 0; i < n_rays; ++i) {
        geom::Ray ray;
        ray.origin = {rng.uniform(-25, 25), rng.uniform(-25, 25), -30};
        ray.dir = geom::normalize({rng.uniform(-0.2f, 0.2f),
                                   rng.uniform(-0.2f, 0.2f), 1.0f});
        bvh.traverse(ray, [&](uint32_t) { ++tests; });
    }
    EXPECT_LT(tests, static_cast<uint64_t>(n_rays) * boxes.size() / 20);
}
