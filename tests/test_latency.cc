/**
 * @file
 * Unit tests for the service latency-percentile math
 * (service/latency.hh): exact nearest-rank percentiles on known
 * distributions, the <= 1/32 relative-error bound of the log-bucketed
 * layout, histogram-overflow behavior, merge associativity, and
 * cycle <-> wall-clock conversion consistency.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "service/latency.hh"
#include "sim/config.hh"
#include "sim/rng.hh"

using tta::service::LatencyHistogram;
using tta::service::cyclesToUs;

namespace {

/** Independent nearest-rank reference on the raw samples. */
uint64_t
refPercentile(std::vector<uint64_t> sorted, double p)
{
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
    if (rank < 1)
        rank = 1;
    return sorted[rank - 1];
}

} // namespace

TEST(Latency, BucketRoundTrip)
{
    // Every bucket's lower edge maps back to that bucket, and any value
    // lands in a bucket whose edge is within 1/32 below it.
    for (uint32_t b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
        uint64_t edge = LatencyHistogram::bucketLowerEdge(b);
        EXPECT_EQ(LatencyHistogram::bucketIndex(edge), b)
            << "edge " << edge;
    }
    tta::sim::Rng rng(17);
    for (int i = 0; i < 20000; ++i) {
        uint64_t v = rng.next() >> (rng.nextBounded(40) + 24);
        if (v >= (1ull << LatencyHistogram::kMaxBits))
            continue;
        uint64_t edge = LatencyHistogram::bucketLowerEdge(
            LatencyHistogram::bucketIndex(v));
        EXPECT_LE(edge, v);
        EXPECT_LE(v - edge, std::max<uint64_t>(1, v / 32))
            << "value " << v << " edge " << edge;
    }
}

TEST(Latency, ExactSmallValues)
{
    // Values below 2^5 have unit-width buckets: percentiles are exact.
    LatencyHistogram h;
    for (uint64_t v = 0; v < 32; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), 32u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 31u);
    // Nearest rank: ceil(p/100 * 32)-th smallest.
    EXPECT_EQ(h.percentile(50), 15u);  // rank 16 -> value 15
    EXPECT_EQ(h.percentile(100), 31u); // rank 32 -> value 31
    EXPECT_EQ(h.percentile(3.125), 0u); // rank 1 -> value 0
}

TEST(Latency, ExactKnownDistribution)
{
    // All values sit on exact bucket edges (10 and even values < 128),
    // so p50/p99/p999 must come back exactly.
    LatencyHistogram h;
    for (int i = 0; i < 500; ++i)
        h.record(10);
    for (int i = 0; i < 490; ++i)
        h.record(100);
    for (int i = 0; i < 9; ++i)
        h.record(120);
    h.record(126);
    ASSERT_EQ(h.count(), 1000u);
    EXPECT_EQ(h.percentile(50), 10u);    // rank 500
    EXPECT_EQ(h.percentile(99), 100u);   // rank 990
    EXPECT_EQ(h.percentile(99.9), 120u); // rank 999
    EXPECT_EQ(h.percentile(100), 126u);  // rank 1000
    EXPECT_EQ(h.sum(), 500ull * 10 + 490ull * 100 + 9ull * 120 + 126);
    EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(h.sum()) / 1000.0);
}

TEST(Latency, RelativeErrorBound)
{
    // On arbitrary samples the reported percentile is the lower edge of
    // the rank-holding bucket: never above the exact sample, never more
    // than 1/32 below it.
    tta::sim::Rng rng(99);
    LatencyHistogram h;
    std::vector<uint64_t> samples;
    for (int i = 0; i < 50000; ++i) {
        uint64_t v = rng.nextBounded(1000000000ull);
        samples.push_back(v);
        h.record(v);
    }
    std::sort(samples.begin(), samples.end());
    for (double p : {50.0, 90.0, 99.0, 99.9}) {
        uint64_t exact = refPercentile(samples, p);
        uint64_t got = h.percentile(p);
        EXPECT_LE(got, exact) << "p" << p;
        EXPECT_GE(got, exact - std::max<uint64_t>(1, exact / 32))
            << "p" << p;
    }
}

TEST(Latency, OverflowTail)
{
    LatencyHistogram h;
    for (int i = 0; i < 10; ++i)
        h.record(100);
    uint64_t huge = (1ull << LatencyHistogram::kMaxBits) + 12345;
    for (int i = 0; i < 5; ++i)
        h.record(huge + i);
    EXPECT_EQ(h.count(), 15u);
    EXPECT_EQ(h.overflow(), 5u);
    EXPECT_EQ(h.max(), huge + 4);
    // Ranks landing in the overflow tail report the tracked maximum.
    EXPECT_EQ(h.percentile(99), h.max());
    // Ranks below the tail are unaffected.
    EXPECT_EQ(h.percentile(50), 100u);
    // Overflow samples still count toward sum/mean.
    EXPECT_EQ(h.sum(), 10ull * 100 + 5 * huge + (0 + 1 + 2 + 3 + 4));
}

TEST(Latency, MergeWithOverflowTail)
{
    // Per-device histograms with overflow-tail entries must merge
    // exactly: counts, sums, extrema and the overflow tally all add,
    // and a rank landing in the merged tail reports the merged max.
    const uint64_t lim = 1ull << LatencyHistogram::kMaxBits;
    LatencyHistogram a, b, all;
    auto rec = [&](LatencyHistogram &h, uint64_t v) {
        h.record(v);
        all.record(v);
    };
    for (int i = 0; i < 90; ++i)
        rec(a, 1000 + i);
    for (int i = 0; i < 5; ++i)
        rec(a, lim + i); // a's tail holds the global max
    for (int i = 0; i < 90; ++i)
        rec(b, 500 + i);
    for (int i = 0; i < 15; ++i)
        rec(b, lim - 1 - i); // near-tail, below the overflow cut
    rec(b, lim + 2);

    LatencyHistogram m = a;
    m.merge(b);
    EXPECT_EQ(m.count(), a.count() + b.count());
    EXPECT_EQ(m.overflow(), 6u);
    EXPECT_EQ(m.sum(), a.sum() + b.sum());
    EXPECT_EQ(m.min(), 500u);
    EXPECT_EQ(m.max(), lim + 4);
    // 201 samples, 6 in the tail: rank 197 (p98) is the first tail
    // rank and reports the merged maximum; p97 (rank 195) still sits
    // in b's near-tail bucket just under the cut.
    EXPECT_EQ(m.percentile(98), m.max());
    EXPECT_EQ(m.percentile(100), m.max());
    uint64_t p97 = m.percentile(97);
    EXPECT_LE(p97, lim - 1);
    EXPECT_GE(p97, (lim - 1) - (lim - 1) / 32);
    // Byte-identical to one histogram fed every sample directly, in
    // either merge direction.
    EXPECT_EQ(m.dumpString(), all.dumpString());
    LatencyHistogram m2 = b;
    m2.merge(a);
    EXPECT_EQ(m2.dumpString(), all.dumpString());
}

TEST(Latency, MergeAssociativityWithOverflow)
{
    // Three-way merges with overflow entries agree regardless of
    // grouping, and an empty histogram is a merge identity — the
    // properties the per-device / per-class report merges rely on.
    tta::sim::Rng rng(11);
    const uint64_t lim = 1ull << LatencyHistogram::kMaxBits;
    LatencyHistogram a, b, c, all;
    for (int i = 0; i < 3000; ++i) {
        uint64_t v = rng.nextBounded(16) == 0
                         ? lim + rng.nextBounded(1ull << 20)
                         : rng.nextBounded(lim);
        all.record(v);
        (i % 3 == 0 ? a : i % 3 == 1 ? b : c).record(v);
    }
    ASSERT_GT(all.overflow(), 0u);
    LatencyHistogram ab = a;
    ab.merge(b);
    ab.merge(c); // (a + b) + c
    LatencyHistogram bc = b;
    bc.merge(c);
    LatencyHistogram abc = a;
    abc.merge(bc); // a + (b + c)
    EXPECT_EQ(ab.dumpString(), all.dumpString());
    EXPECT_EQ(abc.dumpString(), all.dumpString());

    LatencyHistogram keep = all;
    LatencyHistogram empty;
    keep.merge(empty);
    EXPECT_EQ(keep.dumpString(), all.dumpString());
    LatencyHistogram onto;
    onto.merge(all);
    EXPECT_EQ(onto.dumpString(), all.dumpString());
}

TEST(Latency, MergeMatchesSingle)
{
    tta::sim::Rng rng(3);
    LatencyHistogram all, a, b;
    for (int i = 0; i < 10000; ++i) {
        uint64_t v = rng.nextBounded(1ull << 36);
        all.record(v);
        (i % 2 ? a : b).record(v);
    }
    a.merge(b);
    EXPECT_EQ(a.dumpString(), all.dumpString());
}

TEST(Latency, EmptyHistogram)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(50), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Latency, CycleWallClockConsistency)
{
    // MHz is cycles per microsecond: the two reporting units must agree
    // through the configured core clock exactly.
    tta::sim::Config cfg;
    EXPECT_DOUBLE_EQ(cyclesToUs(static_cast<uint64_t>(cfg.coreClockMhz),
                                cfg.coreClockMhz),
                     1.0);
    tta::sim::Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        uint64_t cycles = rng.nextBounded(1ull << 40);
        double us = cyclesToUs(cycles, cfg.coreClockMhz);
        EXPECT_NEAR(us * cfg.coreClockMhz, static_cast<double>(cycles),
                    static_cast<double>(cycles) * 1e-12);
    }
}
