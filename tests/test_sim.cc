/**
 * @file
 * Simulation-kernel tests: statistics, logging, RNG determinism, config
 * derived quantities, and the run loop.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/ticked.hh"

using namespace tta::sim;

TEST(Stats, CountersScalarsHistograms)
{
    StatRegistry stats;
    Counter &c = stats.counter("a.b");
    ++c;
    c += 5;
    EXPECT_EQ(stats.counterValue("a.b"), 6u);
    EXPECT_EQ(stats.counterValue("missing"), 0u);

    Scalar &s = stats.scalar("x");
    s.set(2.5);
    s += 0.5;
    EXPECT_DOUBLE_EQ(stats.scalarValue("x"), 3.0);

    Histogram &h = stats.histogram("h", 1.0, 8);
    h.sample(0.5);
    h.sample(3.5);
    h.sample(100.0); // clamps into the last bucket
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.maxValue(), 100.0);
    EXPECT_NEAR(h.mean(), 104.0 / 3, 1e-9);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[3], 1u);
    EXPECT_EQ(h.buckets()[7], 1u);
}

TEST(Stats, HistogramTracksOverflow)
{
    StatRegistry stats;
    Histogram &h = stats.histogram("lat", 2.0, 4); // covers [0, 8)
    h.sample(0.0);
    h.sample(7.9);
    EXPECT_EQ(h.overflow(), 0u);

    h.sample(8.0); // first value past the top bucket edge
    h.sample(1e6);
    EXPECT_EQ(h.overflow(), 2u);
    // Overflowing samples still clamp into the last bucket (which also
    // holds 7.9), so the bucket sum keeps matching the sample count.
    EXPECT_EQ(h.buckets().back(), 3u);
    EXPECT_EQ(h.count(), 4u);

    std::ostringstream os;
    stats.dump(os);
    EXPECT_NE(os.str().find("lat.overflow 2"), std::string::npos);

    h.reset();
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Stats, SameNameSharesCounter)
{
    StatRegistry stats;
    Counter &a = stats.counter("shared");
    Counter &b = stats.counter("shared");
    ++a;
    ++b;
    EXPECT_EQ(stats.counterValue("shared"), 2u);
}

TEST(Stats, ResetAndDump)
{
    StatRegistry stats;
    stats.counter("n") += 7;
    stats.scalar("v").set(1.0);
    std::ostringstream os;
    stats.dump(os);
    EXPECT_NE(os.str().find("n 7"), std::string::npos);
    std::ostringstream csv;
    stats.dumpCsv(csv);
    EXPECT_NE(csv.str().find("n,7"), std::string::npos);
    stats.reset();
    EXPECT_EQ(stats.counterValue("n"), 0u);
}

TEST(Logging, FatalThrowsPanicKillsNot)
{
    EXPECT_THROW(fatal("bad user input %d", 7), FatalError);
    try {
        fatal("value %s", "xyz");
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("xyz"), std::string::npos);
    }
    EXPECT_NO_THROW(fatal_if(false, "not raised"));
    EXPECT_THROW(fatal_if(true, "raised"), FatalError);
}

TEST(Rng, DeterministicAndSeedSensitive)
{
    Rng a(99), b(99), c(100);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    bool differs = false;
    Rng a2(99);
    for (int i = 0; i < 10; ++i)
        differs |= a2.next() != c.next();
    EXPECT_TRUE(differs);
}

TEST(Rng, RangesRespected)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        float f = rng.nextFloat();
        EXPECT_GE(f, 0.0f);
        EXPECT_LT(f, 1.0f);
        uint64_t k = rng.nextBounded(17);
        EXPECT_LT(k, 17u);
        float u = rng.uniform(-2.0f, 3.0f);
        EXPECT_GE(u, -2.0f);
        EXPECT_LT(u, 3.0f);
    }
    // Gaussian has roughly zero mean.
    double sum = 0;
    for (int i = 0; i < 5000; ++i)
        sum += rng.gaussian();
    EXPECT_NEAR(sum / 5000, 0.0, 0.1);
}

TEST(Config, DerivedQuantitiesAndPrint)
{
    Config cfg;
    EXPECT_NEAR(cfg.memClockRatio(), 3500.0 / 1365.0, 1e-9);
    EXPECT_GT(cfg.dramPeakBytesPerCoreCycle(), 0.0);
    std::ostringstream os;
    cfg.print(os);
    EXPECT_NE(os.str().find("SMs: 8"), std::string::npos);
    EXPECT_EQ(std::string(accelModeName(AccelMode::TtaPlus)), "TTA+");
}

namespace {

class CountDown : public TickedComponent
{
  public:
    explicit CountDown(int n) : TickedComponent("cd"), remaining_(n) {}
    void
    tick(Cycle) override
    {
        if (remaining_ > 0)
            --remaining_;
    }
    bool busy() const override { return remaining_ > 0; }

  private:
    int remaining_;
};

} // namespace

TEST(Simulator, RunsToQuiescence)
{
    StatRegistry stats;
    Simulator sim(stats);
    CountDown a(10), b(25);
    sim.add(&a);
    sim.add(&b);
    Cycle ran = sim.runToQuiescence();
    EXPECT_EQ(ran, 25u);
    EXPECT_FALSE(sim.anyBusy());
}

namespace {

/** A component that never quiesces — a modeled deadlock. */
class AlwaysBusy : public TickedComponent
{
  public:
    explicit AlwaysBusy(std::string name) : TickedComponent(std::move(name))
    {}
    void tick(Cycle) override {}
    bool busy() const override { return true; }
};

} // namespace

TEST(Simulator, BusyComponentNamesListsOnlyBusyOnes)
{
    StatRegistry stats;
    Simulator sim(stats);
    CountDown done(0);
    AlwaysBusy a("rta0"), b("memsys");
    sim.add(&a);
    sim.add(&done);
    sim.add(&b);
    EXPECT_EQ(sim.busyComponentNames(), "rta0, memsys");
}

TEST(SimulatorDeathTest, WatchdogPanicsNamingBusyComponents)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    StatRegistry stats;
    Simulator sim(stats);
    CountDown quiet(3);
    AlwaysBusy stuck("stuck.unit");
    sim.add(&quiet);
    sim.add(&stuck);
    // The watchdog must abort instead of hanging, and its message must
    // name the component that still reports in-flight work.
    EXPECT_DEATH(sim.runToQuiescence(100),
                 "did not quiesce within 100 cycles.*stuck\\.unit");
}

TEST(Config, WatchdogLimitIsConfigurable)
{
    Config cfg;
    // Generous default: far beyond any legitimate run in this repo, so
    // it only fires on true deadlocks.
    EXPECT_GE(cfg.watchdogCycles, 1'000'000'000ull);
    cfg.watchdogCycles = 1234;
    EXPECT_EQ(cfg.watchdogCycles, 1234u);
}
