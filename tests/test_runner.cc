/**
 * @file
 * ExperimentRunner unit tests: submission-order results, error
 * propagation (a throwing job must not wedge the pool), serial/parallel
 * determinism of the JSON records, and config-digest stability.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "sim/runner.hh"
#include "workloads/btree_workload.hh"

using namespace tta;
using namespace ::tta::workloads;

namespace {

std::vector<sim::Job>
countingJobs(size_t n)
{
    std::vector<sim::Job> jobs(n);
    for (size_t i = 0; i < n; ++i) {
        jobs[i].name = "job" + std::to_string(i);
        jobs[i].seed = i;
        jobs[i].fn = [i](const sim::Config &, sim::StatRegistry &stats,
                         sim::RunRecord &rec) {
            stats.counter("index") += i;
            rec.cycles = 100 + i;
            rec.values["twice"] = 2.0 * static_cast<double>(i);
        };
    }
    return jobs;
}

} // namespace

TEST(Runner, ResultsComeBackInSubmissionOrder)
{
    auto jobs = countingJobs(23);
    for (unsigned threads : {1u, 4u}) {
        sim::ExperimentRunner runner(threads);
        auto records = runner.run(jobs);
        ASSERT_EQ(records.size(), jobs.size());
        for (size_t i = 0; i < records.size(); ++i) {
            EXPECT_EQ(records[i].name, jobs[i].name);
            EXPECT_EQ(records[i].seed, i);
            EXPECT_EQ(records[i].cycles, 100 + i);
            EXPECT_EQ(records[i].stats.counterValue("index"), i);
            EXPECT_FALSE(records[i].failed());
            EXPECT_GE(records[i].wallSeconds, 0.0);
        }
    }
}

TEST(Runner, ZeroThreadsMeansHardwareConcurrency)
{
    sim::ExperimentRunner runner(0);
    EXPECT_GE(runner.threads(), 1u);
    auto records = runner.run(countingJobs(3));
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[2].cycles, 102u);
}

TEST(Runner, EmptyJobListIsFine)
{
    sim::ExperimentRunner runner(4);
    EXPECT_TRUE(runner.run({}).empty());
}

TEST(Runner, ThrowingJobDoesNotWedgeThePool)
{
    auto jobs = countingJobs(8);
    jobs[2].fn = [](const sim::Config &, sim::StatRegistry &,
                    sim::RunRecord &) {
        throw std::runtime_error("deliberate failure");
    };
    jobs[5].fn = [](const sim::Config &, sim::StatRegistry &,
                    sim::RunRecord &) { throw 42; }; // non-std exception
    for (unsigned threads : {1u, 4u}) {
        sim::ExperimentRunner runner(threads);
        auto records = runner.run(jobs);
        ASSERT_EQ(records.size(), jobs.size());
        EXPECT_TRUE(records[2].failed());
        EXPECT_NE(records[2].error.find("deliberate failure"),
                  std::string::npos);
        EXPECT_TRUE(records[5].failed());
        EXPECT_FALSE(records[5].error.empty());
        // Every other job still ran to completion.
        for (size_t i : {0u, 1u, 3u, 4u, 6u, 7u}) {
            EXPECT_FALSE(records[i].failed()) << "job " << i;
            EXPECT_EQ(records[i].cycles, 100 + i);
        }
        // The error lands in the JSON record too.
        EXPECT_NE(records[2].toJson(false).find("\"error\""),
                  std::string::npos);
    }
}

TEST(Runner, SerialAndParallelRecordsAreByteIdentical)
{
    // Real simulations, not stubs: the property the figure sweeps rely
    // on. Timing excluded — it is the only nondeterministic field.
    auto mkJobs = [] {
        std::vector<sim::Job> jobs;
        for (uint64_t seed : {7u, 8u, 9u, 10u}) {
            sim::Job job;
            job.name = "btree/seed" + std::to_string(seed);
            job.config.accelMode = sim::AccelMode::Tta;
            job.seed = seed;
            job.fn = [seed](const sim::Config &cfg,
                            sim::StatRegistry &stats,
                            sim::RunRecord &rec) {
                BTreeWorkload wl(trees::BTreeKind::BTree, 2000, 256,
                                 seed);
                rec.cycles = wl.runAccelerated(cfg, stats).cycles;
            };
            jobs.push_back(std::move(job));
        }
        return jobs;
    };
    auto serial = sim::ExperimentRunner(1).run(mkJobs());
    auto parallel = sim::ExperimentRunner(4).run(mkJobs());
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i].toJson(false), parallel[i].toJson(false))
            << "record " << i;
}

TEST(Runner, JsonRecordIsWellFormedish)
{
    auto records = sim::ExperimentRunner(1).run(countingJobs(1));
    std::string js = records[0].toJson(true);
    EXPECT_EQ(js.front(), '{');
    EXPECT_EQ(js.back(), '}');
    EXPECT_NE(js.find("\"name\":\"job0\""), std::string::npos);
    EXPECT_NE(js.find("\"cycles\":100"), std::string::npos);
    EXPECT_NE(js.find("\"twice\""), std::string::npos);
    EXPECT_NE(js.find("\"wall_ms\""), std::string::npos);
    EXPECT_EQ(records[0].toJson(false).find("\"wall_ms\""),
              std::string::npos);
}

TEST(Runner, ConfigDigestStableAndFieldSensitive)
{
    sim::Config a, b;
    EXPECT_EQ(sim::configDigest(a), sim::configDigest(b));
    EXPECT_EQ(sim::configDigest(a).size(), 16u);

    b.accelMode = sim::AccelMode::TtaPlus;
    EXPECT_NE(sim::configDigest(a), sim::configDigest(b));

    sim::Config c;
    c.icntHopLatency += 1;
    EXPECT_NE(sim::configDigest(a), sim::configDigest(c));

    sim::Config d;
    d.rtaCoalescing = !d.rtaCoalescing;
    EXPECT_NE(sim::configDigest(a), sim::configDigest(d));
}
