/**
 * @file
 * Threaded-kernel tests.
 *
 * The threaded kernel must be bit-identical to the serial kernels at any
 * thread count (see the contract in sim/ticked.hh and DESIGN.md
 * "Threaded simulation kernel"). The scripted tests pin the staged
 * cross-shard wake mechanics one rule at a time; the randomized oracle
 * runs a network of per-shard producers that chatter through a
 * shared-shard router — adversarially many same-cycle cross-shard
 * messages — under the event kernel, the polling kernel and the threaded
 * kernel at several pool sizes, requiring identical logs and cycle
 * counts across many seeds. A workload-level test runs a real simulation
 * at thread counts 1..12 (including oversubscribed: more threads than
 * SMs) and diffs the entire stat dump against the event kernel. The
 * epoch-batching sweep re-runs that workload across adversarial
 * --sim-epoch sizes (1, 2, the L2 round trip and its neighbour, the
 * staging width, and an oversized request) at several pool sizes. Death
 * tests pin the model-bug diagnostics (an undeliverable same-cycle
 * cross-shard wake, a cross-epoch wake earlier than its staging epoch
 * allows, a trace stream shared across shards) and the environment
 * overrides (TTA_SIM_SPIN, TTA_SIM_EPOCH); hardware-concurrency
 * consumers are tested against a zero-returning probe, and the
 * ExperimentRunner's jobs × sim-threads host budget is covered as a pure
 * function.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <tuple>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/runner.hh"
#include "sim/stats.hh"
#include "sim/ticked.hh"
#include "sim/trace.hh"
#include "workloads/btree_workload.hh"
#include "workloads/raytracing_workload.hh"

using namespace ::tta::sim;
namespace workloads = ::tta::workloads;
namespace trees = ::tta::trees;

namespace {

/** Scripted component: records its tick cycles; behavior injectable. */
class Probe : public TickedComponent
{
  public:
    explicit Probe(std::string name) : TickedComponent(std::move(name)) {}

    void
    tick(Cycle cycle) override
    {
        ticks.push_back(cycle);
        next = kAsleep;
        if (onTick)
            onTick(cycle);
    }
    bool busy() const override { return busyFlag; }
    Cycle nextEventCycle(Cycle) const override { return next; }

    std::function<void(Cycle)> onTick;
    std::vector<Cycle> ticks;
    Cycle next = kAsleep;
    bool busyFlag = false;
};

/** Drain every scheduled event (probes are not busy()-driven). */
void
drain(Simulator &sim)
{
    while (sim.advance(1'000'000)) {
    }
}

} // namespace

TEST(ThreadedScheduler, ThreadCountClampedToShards)
{
    StatRegistry stats;
    Simulator sim(stats);
    sim.setKernel(Simulator::Kernel::Threaded);
    sim.setSimThreads(8); // only two shards exist: six would idle
    Probe a("a"), b("b");
    sim.add(&a, 0);
    sim.add(&b, 1);
    drain(sim);
    EXPECT_EQ(sim.simThreads(), 2u);
}

TEST(ThreadedScheduler, CrossShardFutureWakeDelivered)
{
    StatRegistry stats;
    Simulator sim(stats);
    sim.setKernel(Simulator::Kernel::Threaded);
    sim.setSimThreads(2);
    Probe a("a"), b("b");
    a.onTick = [&](Cycle c) {
        if (c == 0)
            b.wake(c + 3); // staged by a's worker, replayed at the barrier
    };
    sim.add(&a, 0);
    sim.add(&b, 1);
    drain(sim);
    EXPECT_EQ(a.ticks, (std::vector<Cycle>{0}));
    EXPECT_EQ(b.ticks, (std::vector<Cycle>{0, 3}));
}

TEST(ThreadedScheduler, SameCycleWakeToLaterSegmentLandsSameCycle)
{
    StatRegistry stats;
    Simulator sim(stats);
    sim.setKernel(Simulator::Kernel::Threaded);
    sim.setSimThreads(2);
    Probe a("a"), shared("shared");
    a.onTick = [&](Cycle c) {
        if (c == 0)
            a.next = 5;
        if (c == 5)
            shared.wake(c); // the serial segment after us still runs
    };
    sim.add(&a, 0);
    sim.add(&shared); // kSharedShard: coordinator, after the islands
    drain(sim);
    EXPECT_EQ(a.ticks, (std::vector<Cycle>{0, 5}));
    EXPECT_EQ(shared.ticks, (std::vector<Cycle>{0, 5}));
}

TEST(ThreadedDeathTest, SameCycleWakeToFinishedSegmentPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    StatRegistry stats;
    Simulator sim(stats);
    sim.setKernel(Simulator::Kernel::Threaded);
    sim.setSimThreads(1); // inline path: staging without pool scheduling
    Probe a("a"), b("b");
    a.onTick = [&](Cycle c) { b.wake(c); };
    sim.add(&a, 0);
    sim.add(&b, 1); // same parallel segment as a
    // a's same-cycle message is staged (cross-shard) and replayed at the
    // barrier — after b's segment already ran. The serial scan would
    // have delivered it within the cycle; the threaded kernel cannot, so
    // it must refuse loudly instead of silently reordering.
    EXPECT_DEATH(sim.step(), "cannot be delivered");
}

TEST(ThreadedDeathTest, TraceStreamSharedAcrossShardsPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    StatRegistry stats;
    Simulator sim(stats);
    sim.setKernel(Simulator::Kernel::Threaded);
    sim.setSimThreads(1);
    Tracer tracer(TraceWarp, 64);
    TraceStream *shared = tracer.stream("shared.stream", TraceWarp);
    ASSERT_NE(shared, nullptr);
    Probe a("a"), b("b");
    a.onTick = [&](Cycle c) { shared->instant(c, "a"); };
    b.onTick = [&](Cycle c) { shared->instant(c, "b"); };
    sim.add(&a, 0);
    sim.add(&b, 1);
    // Streams are single-writer under the threaded kernel: the second
    // shard pushing into a's stream is a wiring bug, not a data point.
    EXPECT_DEATH(sim.step(), "shared across shards");
}

TEST(RunnerBudget, JobsTimesSimThreadsFitsHardware)
{
    // The requested job count is honored whenever jobs × sim-threads
    // fits the host...
    EXPECT_EQ(ExperimentRunner::budgetWorkers(4, 2, 8), 4u);
    // ...and clamped when it does not.
    EXPECT_EQ(ExperimentRunner::budgetWorkers(8, 4, 8), 2u);
    EXPECT_EQ(ExperimentRunner::budgetWorkers(8, 3, 8), 2u);
    // sim-threads "auto" (0) means each job may use the whole machine:
    // one job at a time.
    EXPECT_EQ(ExperimentRunner::budgetWorkers(8, 0, 8), 1u);
    // Never 0, even on hosts smaller than one job's pool.
    EXPECT_EQ(ExperimentRunner::budgetWorkers(8, 4, 1), 1u);
    EXPECT_EQ(ExperimentRunner::budgetWorkers(1, 16, 4), 1u);
    // Unknown hardware concurrency (0) degrades to serial.
    EXPECT_EQ(ExperimentRunner::budgetWorkers(8, 2, 0), 1u);
}

namespace {

class Router;

/**
 * Lockstep-oracle island: a seeded random reactor pinned to its own
 * shard that talks to its peers only through the shared-shard Router —
 * every peer message is a cross-shard message. All externally-visible
 * behavior happens only when an event is processed (a routed message or
 * a due self-timer), and each producer logs into its own vector (shard
 * state), so the run is comparable across kernels and thread counts.
 */
class Producer : public TickedComponent
{
  public:
    Producer(uint32_t idx, uint64_t seed, Router *router,
             uint32_t num_producers)
        : TickedComponent("prod" + std::to_string(idx)), idx_(idx),
          rng_(seed * 9176747ull + idx), router_(router),
          numProducers_(num_producers)
    {
        selfNext_ = 1 + idx % 3; // clustered starts: contended cycles
    }

    /**
     * The router hands over a routed message during its own tick. The
     * router ticks after every producer (registration order), so the
     * message becomes visible here next cycle.
     */
    void
    deliver(Cycle cycle, uint32_t from)
    {
        wake(cycle); // the scheduler resolves to cycle + 1: we already ran
        inbox_.push_back({cycle + 1, from});
    }

    void
    tick(Cycle cycle) override
    {
        for (size_t i = 0; i < inbox_.size();) {
            if (inbox_[i].visible > cycle) {
                ++i;
                continue;
            }
            uint32_t from = inbox_[i].from;
            inbox_.erase(inbox_.begin() + static_cast<ptrdiff_t>(i));
            event(cycle, "recv" + std::to_string(from));
        }
        if (selfNext_ != kAsleep && selfNext_ <= cycle) {
            selfNext_ = kAsleep;
            event(cycle, "self");
        }
    }

    bool
    busy() const override
    {
        return !inbox_.empty() || selfNext_ != kAsleep;
    }

    Cycle
    nextEventCycle(Cycle cycle) const override
    {
        Cycle next = selfNext_;
        for (const auto &msg : inbox_)
            next = std::min(next, std::max(msg.visible, cycle + 1));
        return next;
    }

    std::vector<std::string> log;

  private:
    struct Msg
    {
        Cycle visible;
        uint32_t from;
    };

    void event(Cycle cycle, const std::string &what); // needs Router

    uint32_t idx_;
    Rng rng_;
    Router *router_;
    uint32_t numProducers_;
    std::vector<Msg> inbox_;
    Cycle selfNext_;
    uint32_t processed_ = 0;
};

/**
 * Shared-shard message switch, registered after every producer. Posts
 * arriving mid-tick from a sharded producer are staged into the caller's
 * private slot and replayed at the barrier in caller order — the same
 * discipline mem::MemSystem uses — so the routing queue (and with it the
 * whole run) is independent of worker interleaving.
 */
class Router : public TickedComponent
{
  public:
    explicit Router(uint32_t num_producers)
        : TickedComponent("router"), staged_(num_producers)
    {}

    void
    attach(std::vector<std::unique_ptr<Producer>> *producers)
    {
        producers_ = producers;
    }

    /** Called by producers mid-tick; producer `from` has index `from`. */
    void
    post(Cycle cycle, uint32_t from, uint32_t to)
    {
        if (Simulator::currentShard() >= 0) {
            staged_[from].push_back(to);
            wake(cycle); // generic staged cross-shard wake
            return;
        }
        postNow(cycle, from, to);
    }

    void
    drainStaged(Cycle now) override
    {
        for (uint32_t from = 0; from < staged_.size(); ++from) {
            for (uint32_t to : staged_[from]) {
                Simulator::ReplayGuard guard(from);
                postNow(now, from, to);
            }
            staged_[from].clear();
        }
    }

    void
    tick(Cycle cycle) override
    {
        for (size_t i = 0; i < queue_.size();) {
            if (queue_[i].ready > cycle) {
                ++i;
                continue;
            }
            Routed m = queue_[i];
            queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(i));
            log.push_back("c" + std::to_string(cycle) + " route " +
                          std::to_string(m.from) + ">" +
                          std::to_string(m.to));
            (*producers_)[m.to]->deliver(cycle, m.from);
        }
    }

    bool busy() const override { return !queue_.empty(); }

    Cycle
    nextEventCycle(Cycle cycle) const override
    {
        Cycle next = kAsleep;
        for (const auto &m : queue_)
            next = std::min(next, std::max(m.ready, cycle + 1));
        return next;
    }

    std::vector<std::string> log;

  private:
    struct Routed
    {
        Cycle ready;
        uint32_t from;
        uint32_t to;
    };

    void
    postNow(Cycle cycle, uint32_t from, uint32_t to)
    {
        wake(cycle); // we tick after every producer: lands this cycle
        queue_.push_back({cycle + 1, from, to}); // one cycle of routing
    }

    std::vector<std::vector<uint32_t>> staged_;
    std::vector<Routed> queue_;
    std::vector<std::unique_ptr<Producer>> *producers_ = nullptr;
};

void
Producer::event(Cycle cycle, const std::string &what)
{
    log.push_back("c" + std::to_string(cycle) + " " + what);
    if (++processed_ >= 30)
        return; // stop generating work so the network quiesces
    uint64_t roll = rng_.nextBounded(100);
    if (roll < 55) {
        // One or two same-cycle posts; two in a row pin the per-caller
        // program order across the barrier replay.
        uint32_t sends = roll < 20 ? 2 : 1;
        for (uint32_t s = 0; s < sends; ++s) {
            uint32_t to =
                static_cast<uint32_t>(rng_.nextBounded(numProducers_));
            log.push_back("c" + std::to_string(cycle) + " send" +
                          std::to_string(to));
            router_->post(cycle, idx_, to);
        }
    } else if (roll < 85) {
        Cycle at = cycle + 1 + rng_.nextBounded(6);
        if (at < selfNext_)
            selfNext_ = at;
    } // else: go idle until the router delivers something
}

struct RouterRun
{
    Cycle cycles = 0;
    std::vector<std::string> routerLog;
    std::vector<std::vector<std::string>> producerLogs;
    size_t routed = 0;
};

RouterRun
runRouterNetwork(uint64_t seed, Simulator::Kernel kernel, unsigned threads)
{
    constexpr uint32_t kProducers = 8;
    StatRegistry stats;
    Simulator sim(stats);
    sim.setKernel(kernel);
    sim.setSimThreads(threads);
    Router router(kProducers);
    std::vector<std::unique_ptr<Producer>> producers;
    for (uint32_t i = 0; i < kProducers; ++i) {
        producers.push_back(
            std::make_unique<Producer>(i, seed, &router, kProducers));
    }
    router.attach(&producers);
    for (uint32_t i = 0; i < kProducers; ++i)
        sim.add(producers[i].get(), static_cast<int>(i));
    sim.add(&router); // shared shard: serial, after the islands
    sim.runToQuiescence(500'000);
    RouterRun out;
    out.cycles = sim.cycle();
    out.routed = router.log.size();
    out.routerLog = std::move(router.log);
    for (auto &p : producers)
        out.producerLogs.push_back(std::move(p->log));
    return out;
}

} // namespace

TEST(ThreadedOracle, RouterNetworkLockstepAcrossSeeds)
{
    size_t total_routed = 0;
    for (uint64_t seed = 1; seed <= 55; ++seed) {
        RouterRun ref =
            runRouterNetwork(seed, Simulator::Kernel::EventDriven, 0);
        total_routed += ref.routed;
        RouterRun polling =
            runRouterNetwork(seed, Simulator::Kernel::Polling, 0);
        EXPECT_EQ(ref.cycles, polling.cycles)
            << "polling cycles diverged for seed " << seed;
        ASSERT_EQ(ref.routerLog, polling.routerLog)
            << "polling routing diverged for seed " << seed;
        ASSERT_EQ(ref.producerLogs, polling.producerLogs)
            << "polling producer logs diverged for seed " << seed;
        for (unsigned threads : {1u, 2u, 4u, 8u}) {
            RouterRun t =
                runRouterNetwork(seed, Simulator::Kernel::Threaded, threads);
            EXPECT_EQ(ref.cycles, t.cycles)
                << "cycles diverged for seed " << seed << " at "
                << threads << " threads";
            ASSERT_EQ(ref.routerLog, t.routerLog)
                << "routing order diverged for seed " << seed << " at "
                << threads << " threads";
            ASSERT_EQ(ref.producerLogs, t.producerLogs)
                << "producer logs diverged for seed " << seed << " at "
                << threads << " threads";
        }
    }
    // The oracle is only adversarial if messages actually crossed shards.
    EXPECT_GT(total_routed, 1000u);
}

namespace {

/** Force the process-wide kernel / thread-count / epoch-size defaults
 *  for one scope (epoch 0 = "auto": the machine model's limit). */
struct DefaultsGuard
{
    DefaultsGuard(Simulator::Kernel kernel, unsigned threads,
                  unsigned epoch = 0)
    {
        Simulator::setDefaultKernel(kernel);
        Simulator::setDefaultSimThreads(threads);
        Simulator::setDefaultSimEpoch(epoch);
    }
    ~DefaultsGuard()
    {
        Simulator::resetDefaultKernel();
        Simulator::resetDefaultSimThreads();
        Simulator::resetDefaultSimEpoch();
    }
};

struct WorkloadRun
{
    uint64_t cycles;
    std::string stats;
};

WorkloadRun
runWorkload(Simulator::Kernel kernel, unsigned threads, bool accelerated,
            unsigned epoch = 0)
{
    DefaultsGuard guard(kernel, threads, epoch);
    StatRegistry stats;
    workloads::BTreeWorkload wl(trees::BTreeKind::BTree, 1000, 128, 5);
    Config cfg;
    cfg.accelMode = accelerated ? AccelMode::Tta : AccelMode::BaselineGpu;
    workloads::RunMetrics m = accelerated ? wl.runAccelerated(cfg, stats)
                                          : wl.runBaseline(cfg, stats);
    return {m.cycles, stats.dumpString()};
}

} // namespace

TEST(ThreadedOracle, WorkloadBitIdenticalAcrossThreadCounts)
{
    for (bool accelerated : {false, true}) {
        WorkloadRun ref =
            runWorkload(Simulator::Kernel::EventDriven, 0, accelerated);
        // 12 threads oversubscribes the 8 SM shards on purpose.
        for (unsigned threads : {1u, 2u, 4u, 8u, 12u}) {
            WorkloadRun t = runWorkload(Simulator::Kernel::Threaded,
                                        threads, accelerated);
            EXPECT_EQ(ref.cycles, t.cycles)
                << (accelerated ? "tta" : "baseline")
                << " cycles diverged at " << threads << " threads";
            EXPECT_EQ(ref.stats, t.stats)
                << (accelerated ? "tta" : "baseline")
                << " stat dump diverged at " << threads << " threads";
        }
    }
}

// Adversarial --sim-epoch sweep: every requested epoch size — per-cycle,
// tiny, the L2 round trip and its off-by-one neighbour, the kMaxEpoch
// staging-buffer width, and an absurd oversized request (clamped to the
// model's limit) — must leave cycles and the full stat dump bit-identical
// to the event kernel at every pool size.
TEST(ThreadedOracle, WorkloadBitIdenticalAcrossEpochSizes)
{
    WorkloadRun ref =
        runWorkload(Simulator::Kernel::EventDriven, 0, /*accelerated=*/true);
    for (unsigned epoch : {1u, 2u, 159u, 160u, 64u, 4096u}) {
        for (unsigned threads : {1u, 2u, 4u, 8u}) {
            WorkloadRun t = runWorkload(Simulator::Kernel::Threaded,
                                        threads, true, epoch);
            EXPECT_EQ(ref.cycles, t.cycles)
                << "tta cycles diverged at epoch " << epoch << ", "
                << threads << " threads";
            EXPECT_EQ(ref.stats, t.stats)
                << "tta stat dump diverged at epoch " << epoch << ", "
                << threads << " threads";
        }
    }
    // Spot-check the unaccelerated model too (no RTA in the parallel
    // segment, different staging traffic shape).
    WorkloadRun bref =
        runWorkload(Simulator::Kernel::EventDriven, 0, false);
    for (unsigned epoch : {2u, 160u}) {
        for (unsigned threads : {2u, 8u}) {
            WorkloadRun t = runWorkload(Simulator::Kernel::Threaded,
                                        threads, false, epoch);
            EXPECT_EQ(bref.cycles, t.cycles)
                << "baseline cycles diverged at epoch " << epoch << ", "
                << threads << " threads";
            EXPECT_EQ(bref.stats, t.stats)
                << "baseline stat dump diverged at epoch " << epoch
                << ", " << threads << " threads";
        }
    }
}

// Windows on a scripted model: sharded probes self-schedule sparse tick
// patterns and poke a shared-shard component same-cycle (always legal —
// the serial segment runs after the islands, and in a window the staged
// wake replays at the barrier before the shared slot for that cycle).
// Tick sequences must match the event kernel at every epoch size.
TEST(ThreadedEpoch, ToyModelWindowsMatchEventKernel)
{
    auto run = [](Simulator::Kernel kernel, unsigned threads,
                  unsigned epoch) {
        StatRegistry stats;
        Simulator sim(stats);
        sim.setKernel(kernel);
        sim.setSimThreads(threads);
        sim.setSimEpoch(epoch);
        sim.setEpochLimit(8); // model opt-in
        Probe a("a"), b("b"), shared("s");
        // Contract rule 6: a sharded component with pending work must
        // report busy() — the window replay stops at global quiescence.
        a.busyFlag = true;
        a.onTick = [&](Cycle c) {
            if (c < 40)
                a.next = c + 3;
            a.busyFlag = c < 40;
            shared.wake(c);
        };
        b.busyFlag = true;
        b.onTick = [&](Cycle c) {
            if (c < 40)
                b.next = c + 5;
            b.busyFlag = c < 40;
        };
        sim.add(&a, 0);
        sim.add(&b, 1);
        sim.add(&shared);
        drain(sim);
        return std::make_tuple(a.ticks, b.ticks, shared.ticks);
    };
    auto ref = run(Simulator::Kernel::EventDriven, 0, 0);
    for (unsigned epoch : {1u, 3u, 8u, 64u})
        for (unsigned threads : {1u, 2u, 4u})
            EXPECT_EQ(ref, run(Simulator::Kernel::Threaded, threads, epoch))
                << "toy model diverged at epoch " << epoch << ", "
                << threads << " threads";
}

// An advisory wake (wakeHint) landing mid-window on a cycle where the
// target never ticked is dropped, not a panic: its contract is that any
// genuinely waiting target self-schedules a retry, so the tick it would
// have caused is a no-op. The memory system's "queue has space again"
// broadcast uses this.
TEST(ThreadedEpoch, HintWakeIntoRunWindowIsDropped)
{
    StatRegistry stats;
    Simulator sim(stats);
    sim.setKernel(Simulator::Kernel::Threaded);
    sim.setSimThreads(2);
    sim.setEpochLimit(8);
    sim.setSimEpoch(0); // auto — immune to TTA_SIM_EPOCH
    Probe a("a"), b("b");
    a.busyFlag = true;
    a.onTick = [&](Cycle c) {
        if (c == 0)
            a.next = 2;
        a.busyFlag = c == 0;
        if (c == 2)
            b.wakeHint(4); // advisory, b never ticks at 4: dropped
    };
    sim.add(&a, 0);
    sim.add(&b, 1);
    drain(sim);
    EXPECT_EQ(a.ticks, (std::vector<Cycle>{0, 2}));
    EXPECT_EQ(b.ticks, (std::vector<Cycle>{0}));
}

// The Sponza ambient-occlusion scene on baseline cores drives the L1
// input queues to their depth limit, exercising the in-window refusal
// retry (MemSystem::nextAcceptCycle) and the droppable back-pressure
// hint. Stats must still match the event kernel bit-for-bit.
TEST(ThreadedOracle, QueueSaturatedWorkloadBitIdentical)
{
    auto run = [](Simulator::Kernel kernel, unsigned threads,
                  unsigned epoch) {
        DefaultsGuard guard(kernel, threads, epoch);
        StatRegistry stats;
        workloads::RayTracingWorkload wl(workloads::SceneKind::SponzaAo,
                                         16, 16, 2);
        Config cfg;
        cfg.accelMode = AccelMode::BaselineGpu;
        workloads::RunMetrics m = wl.runBaselineCores(cfg, stats);
        return WorkloadRun{m.cycles, stats.dumpString()};
    };
    WorkloadRun ref = run(Simulator::Kernel::EventDriven, 0, 0);
    for (unsigned epoch : {0u, 1u, 20u}) {
        for (unsigned threads : {2u, 8u}) {
            WorkloadRun t =
                run(Simulator::Kernel::Threaded, threads, epoch);
            EXPECT_EQ(ref.cycles, t.cycles)
                << "cycles diverged at epoch " << epoch << ", "
                << threads << " threads";
            EXPECT_EQ(ref.stats, t.stats)
                << "stat dump diverged at epoch " << epoch << ", "
                << threads << " threads";
        }
    }
}

// Rule 7's diagnostic, epoch flavour: a component that stages a
// cross-shard wake for a mid-window cycle where the target shard never
// ticks violates the staging contract — the parallel phase has already
// run past that cycle, so delivery would go back in time. The replay
// must abort with an actionable message, not silently skew timing.
TEST(ThreadedEpochDeathTest, CrossEpochWakeEarlierThanStagingAborts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            StatRegistry stats;
            Simulator sim(stats);
            sim.setKernel(Simulator::Kernel::Threaded);
            sim.setSimThreads(2);
            sim.setEpochLimit(8); // model opt-in: 8-cycle windows
            sim.setSimEpoch(0);   // auto — immune to TTA_SIM_EPOCH
            Probe a("a");
            Probe b("b");
            a.busyFlag = true; // rule 6: busy until the staging tick
            a.onTick = [&](Cycle c) {
                if (c == 0)
                    a.next = 2;
                a.busyFlag = c == 0;
                if (c == 2)
                    b.wake(4); // mid-window, b never ticks at 4
            };
            sim.add(&a, 0);
            sim.add(&b, 1);
            drain(sim);
        },
        "arrives earlier than its staging epoch allows");
}

// A model fatal() thrown inside a worker's slice must propagate out of
// the coordinator's advance() like the serial kernels', not terminate
// the process from a std::thread.
TEST(ThreadedScheduler, WorkerFatalPropagatesToCaller)
{
    for (unsigned epoch_limit : {1u, 8u}) { // per-cycle and windowed
        StatRegistry stats;
        Simulator sim(stats);
        sim.setKernel(Simulator::Kernel::Threaded);
        sim.setSimThreads(2);
        sim.setEpochLimit(epoch_limit);
        sim.setSimEpoch(0); // auto — immune to TTA_SIM_EPOCH
        Probe a("a"), b("b");
        b.onTick = [&](Cycle) { fatal("model bug on a worker"); };
        sim.add(&a, 0);
        sim.add(&b, 1);
        EXPECT_THROW(drain(sim), FatalError);
    }
}

namespace {

unsigned probeZero() { return 0; }
unsigned probeTwo() { return 2; }
unsigned probeSixteen() { return 16; }

/** Install a fake hardware-concurrency probe for one scope. */
struct HwHookGuard
{
    explicit HwHookGuard(unsigned (*probe)())
    {
        Simulator::setHardwareConcurrencyHookForTest(probe);
    }
    ~HwHookGuard() { Simulator::setHardwareConcurrencyHookForTest(nullptr); }
};

} // namespace

// std::thread::hardware_concurrency() may legally return 0 ("not
// computable"); every consumer must fold that to one core instead of
// dividing by it or spawning zero workers.
TEST(HardwareConcurrency, ZeroProbeFallsBackToOne)
{
    HwHookGuard hook(&probeZero);
    EXPECT_EQ(Simulator::hardwareConcurrency(), 1u);

    // ExperimentRunner's "auto" worker count survives the zero probe.
    ExperimentRunner runner(0);
    EXPECT_EQ(runner.threads(), 1u);

    // The threaded kernel's "auto" pool sizes to one worker, and still
    // simulates correctly.
    StatRegistry stats;
    Simulator sim(stats);
    sim.setKernel(Simulator::Kernel::Threaded);
    sim.setSimThreads(0);
    Probe a("a"), b("b");
    sim.add(&a, 0);
    sim.add(&b, 1);
    drain(sim);
    EXPECT_EQ(sim.simThreads(), 1u);
    EXPECT_EQ(a.ticks, (std::vector<Cycle>{0}));
    EXPECT_EQ(b.ticks, (std::vector<Cycle>{0}));
}

// Oversubscribed pools (more workers than host threads) must never
// spin-wait at the barrier: a spinning worker would steal the core its
// peer needs to make progress.
TEST(SpinBudget, OversubscriptionDisablesSpinning)
{
    HwHookGuard hook(&probeTwo);
    StatRegistry stats;
    Simulator sim(stats);
    sim.setKernel(Simulator::Kernel::Threaded);
    sim.setSimThreads(4); // 4 workers on a "2-core" host
    Probe a("a"), b("b"), c("c"), d("d");
    sim.add(&a, 0);
    sim.add(&b, 1);
    sim.add(&c, 2);
    sim.add(&d, 3);
    drain(sim);
    EXPECT_EQ(sim.simThreads(), 4u);
    EXPECT_EQ(sim.effectiveSpinBudget(), 0u);
}

TEST(SpinBudget, FittingPoolUsesDefaultBudget)
{
    HwHookGuard hook(&probeSixteen);
    StatRegistry stats;
    Simulator sim(stats);
    sim.setKernel(Simulator::Kernel::Threaded);
    sim.setSimThreads(2);
    Probe a("a"), b("b");
    sim.add(&a, 0);
    sim.add(&b, 1);
    drain(sim);
    // Matches whatever TTA_SIM_SPIN / the probe resolve to — the point
    // is that a fitting pool is NOT forced to zero.
    EXPECT_EQ(sim.effectiveSpinBudget(), Simulator::defaultSpinBudget());
}

// TTA_SIM_SPIN / TTA_SIM_EPOCH are latched from the environment once per
// process, so the parse paths are pinned in re-exec'd (threadsafe-style)
// children that inherit the variable before their first read.
TEST(SpinBudgetDeathTest, EnvOverrideIsParsed)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    setenv("TTA_SIM_SPIN", "123", 1);
    EXPECT_EXIT(
        std::exit(Simulator::defaultSpinBudget() == 123u ? 0 : 1),
        ::testing::ExitedWithCode(0), "");
    unsetenv("TTA_SIM_SPIN");
}

TEST(EpochDefaultDeathTest, EnvOverrideIsParsed)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    setenv("TTA_SIM_EPOCH", "7", 1);
    EXPECT_EXIT(
        std::exit(Simulator::defaultSimEpoch() == 7u ? 0 : 1),
        ::testing::ExitedWithCode(0), "");
    unsetenv("TTA_SIM_EPOCH");
}

TEST(EpochDefault, SetAndResetRoundTrip)
{
    Simulator::setDefaultSimEpoch(5);
    EXPECT_EQ(Simulator::defaultSimEpoch(), 5u);
    {
        StatRegistry stats;
        Simulator sim(stats);
        EXPECT_EQ(sim.simEpoch(), 5u);
    }
    Simulator::resetDefaultSimEpoch();
    StatRegistry stats;
    Simulator sim(stats);
    EXPECT_EQ(sim.simEpoch(), Simulator::defaultSimEpoch());
}
