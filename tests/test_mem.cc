/**
 * @file
 * Memory-subsystem tests: functional store, coalescer, caches with MSHRs,
 * and the end-to-end memory system timing paths.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/coalescer.hh"
#include "mem/global_memory.hh"
#include "mem/memsys.hh"
#include "sim/config.hh"

using namespace tta;
using namespace tta::mem;

// --- GlobalMemory ------------------------------------------------------

TEST(GlobalMemory, ReadWriteRoundTrip)
{
    GlobalMemory gmem(1u << 20);
    Addr a = gmem.alloc(64);
    gmem.write<uint32_t>(a, 0xdeadbeef);
    gmem.write<float>(a + 4, 3.5f);
    EXPECT_EQ(gmem.read<uint32_t>(a), 0xdeadbeefu);
    EXPECT_FLOAT_EQ(gmem.read<float>(a + 4), 3.5f);
}

TEST(GlobalMemory, AllocAlignmentAndNullReserved)
{
    GlobalMemory gmem(1u << 20);
    Addr a = gmem.alloc(10, 64);
    Addr b = gmem.alloc(10, 128);
    EXPECT_NE(a, 0u); // address 0 reserved as "null"
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 128, 0u);
    EXPECT_GT(b, a);
}

// --- Coalescer ------------------------------------------------------------

TEST(Coalescer, UniformAccessOneTransaction)
{
    std::vector<Addr> addrs(32, 0x1000);
    auto txns = coalesce(addrs, 0xffffffffu, 4, 128);
    ASSERT_EQ(txns.size(), 1u);
    EXPECT_EQ(txns[0].lineAddr, 0x1000u & ~127u);
    EXPECT_EQ(txns[0].laneMask, 0xffffffffu);
}

TEST(Coalescer, ConsecutiveWordsOneLine)
{
    std::vector<Addr> addrs(32);
    for (int lane = 0; lane < 32; ++lane)
        addrs[lane] = 0x2000 + lane * 4; // 128B, one line exactly
    auto txns = coalesce(addrs, 0xffffffffu, 4, 128);
    EXPECT_EQ(txns.size(), 1u);
}

TEST(Coalescer, StridedAccessesScatter)
{
    std::vector<Addr> addrs(32);
    for (int lane = 0; lane < 32; ++lane)
        addrs[lane] = 0x4000 + lane * 256; // every lane its own line
    auto txns = coalesce(addrs, 0xffffffffu, 4, 128);
    EXPECT_EQ(txns.size(), 32u);
}

TEST(Coalescer, InactiveLanesIgnoredAndStraddles)
{
    std::vector<Addr> addrs(32, 0);
    addrs[3] = 0x1000 + 126; // straddles a line boundary
    auto txns = coalesce(addrs, 1u << 3, 4, 128);
    ASSERT_EQ(txns.size(), 2u);
    EXPECT_EQ(txns[0].laneMask, 1u << 3);
    EXPECT_EQ(txns[1].laneMask, 1u << 3);
}

TEST(CoalescerDeath, NonPowerOfTwoLineSizePanics)
{
    std::vector<Addr> addrs(4, 0x1000);
    EXPECT_DEATH(coalesce(addrs, 0xfu, 4, 96), "power of two");
    EXPECT_DEATH(coalesce(addrs, 0xfu, 4, 0), "power of two");
}

TEST(CoalescerDeath, MoreThanThirtyTwoLanesPanics)
{
    std::vector<Addr> addrs(33, 0x1000);
    EXPECT_DEATH(coalesce(addrs, 0xffffffffu, 4, 128), "32-lane");
}

// --- Cache -------------------------------------------------------------

TEST(Cache, HitAfterFillAndLru)
{
    sim::StatRegistry stats;
    // Four lines, 2-way: two sets.
    Cache cache("c", 512, 2, 128, 8, stats);
    EXPECT_EQ(cache.access(0x0000, false), Cache::Result::MissNew);
    cache.fill(0x0000);
    EXPECT_EQ(cache.access(0x0000, false), Cache::Result::Hit);

    // Fill the set (same set: stride = numSets * lineSize = 256).
    EXPECT_EQ(cache.access(0x0100, false), Cache::Result::MissNew);
    cache.fill(0x0100);
    EXPECT_EQ(cache.access(0x0100, false), Cache::Result::Hit);
    // Touch 0x0000 so 0x0100 becomes LRU, then evict with a third line.
    cache.access(0x0000, false);
    EXPECT_EQ(cache.access(0x0200, false), Cache::Result::MissNew);
    cache.fill(0x0200);
    EXPECT_EQ(cache.access(0x0000, false), Cache::Result::Hit);
    EXPECT_EQ(cache.access(0x0100, false), Cache::Result::MissNew);
}

TEST(Cache, MshrMergingAndExhaustion)
{
    sim::StatRegistry stats;
    Cache cache("c", 1024, 8, 128, 2, stats);
    EXPECT_EQ(cache.access(0x1000, false), Cache::Result::MissNew);
    EXPECT_EQ(cache.access(0x1000, false), Cache::Result::MissMerged);
    EXPECT_EQ(cache.access(0x2000, false), Cache::Result::MissNew);
    // Both MSHRs taken: a third distinct miss stalls.
    EXPECT_EQ(cache.access(0x3000, false), Cache::Result::NoMshr);
    cache.fill(0x1000);
    EXPECT_EQ(cache.access(0x3000, false), Cache::Result::MissNew);
    EXPECT_TRUE(cache.missPending(0x2000));
    EXPECT_FALSE(cache.missPending(0x1000));
}

TEST(Cache, WritesAreNoAllocate)
{
    sim::StatRegistry stats;
    Cache cache("c", 1024, 8, 128, 4, stats);
    EXPECT_EQ(cache.access(0x1000, true), Cache::Result::MissNew);
    // The write did not allocate the line or an MSHR.
    EXPECT_FALSE(cache.missPending(0x1000));
    EXPECT_EQ(cache.access(0x1000, false), Cache::Result::MissNew);
}

TEST(Cache, ReadAndWriteMissesCountedSeparately)
{
    sim::StatRegistry stats;
    Cache cache("c", 1024, 8, 128, 4, stats);

    EXPECT_EQ(cache.access(0x1000, false), Cache::Result::MissNew);
    cache.fill(0x1000);
    cache.access(0x1000, false); // hit
    cache.access(0x2000, true);  // write miss (no-allocate)
    cache.access(0x2000, true);  // still a write miss
    EXPECT_EQ(cache.access(0x3000, false), Cache::Result::MissNew);
    // Merging into an in-flight MSHR is not another miss.
    EXPECT_EQ(cache.access(0x3000, false), Cache::Result::MissMerged);

    EXPECT_EQ(stats.counterValue("c.read_misses"), 2u);
    EXPECT_EQ(stats.counterValue("c.write_misses"), 2u);
    // The combined counter (consumed by the energy model) is their sum.
    EXPECT_EQ(stats.counterValue("c.misses"),
              stats.counterValue("c.read_misses") +
                  stats.counterValue("c.write_misses"));
    EXPECT_EQ(stats.counterValue("c.hits"), 1u);
}

// --- MemSystem ------------------------------------------------------------

namespace {

/** Run the memory system until a response arrives; returns cycles. */
sim::Cycle
timeRead(MemSystem &memsys, uint32_t sm, Addr addr, sim::Cycle &clock)
{
    MemRequest req;
    req.addr = addr;
    req.size = 128;
    req.smId = sm;
    req.tag = 0x42;
    memsys.sendRequest(req);
    sim::Cycle start = clock;
    while (memsys.responses(sm).empty()) {
        memsys.tick(clock++);
        if (clock - start > 100000)
            ADD_FAILURE() << "response never arrived";
    }
    memsys.responses(sm).clear();
    return clock - start;
}

} // namespace

TEST(MemSystem, ColdMissThenL1Hit)
{
    sim::Config cfg;
    sim::StatRegistry stats;
    MemSystem memsys(cfg, stats);
    sim::Cycle clock = 0;
    sim::Cycle cold = timeRead(memsys, 0, 0x10000, clock);
    sim::Cycle hit = timeRead(memsys, 0, 0x10000, clock);
    EXPECT_GT(cold, hit);
    EXPECT_GE(hit, cfg.l1LatencyCycles);
    EXPECT_GT(cold, cfg.l2LatencyCycles); // went at least to L2+DRAM
    EXPECT_EQ(stats.counterValue("dram.reads"), 1u);
}

TEST(MemSystem, L2SharedAcrossSms)
{
    sim::Config cfg;
    sim::StatRegistry stats;
    MemSystem memsys(cfg, stats);
    sim::Cycle clock = 0;
    timeRead(memsys, 0, 0x20000, clock); // SM0 warms L2
    sim::Cycle sm1 = timeRead(memsys, 1, 0x20000, clock);
    // SM1 misses its L1 but hits L2: faster than DRAM, slower than L1.
    EXPECT_EQ(stats.counterValue("dram.reads"), 1u);
    EXPECT_GT(sm1, cfg.l1LatencyCycles);
}

TEST(MemSystem, PerfectMemoryShortCircuits)
{
    sim::Config cfg;
    cfg.perfectMemory = true;
    sim::StatRegistry stats;
    MemSystem memsys(cfg, stats);
    MemRequest req;
    req.addr = 0x8000;
    req.smId = 2;
    memsys.sendRequest(req);
    EXPECT_EQ(memsys.responses(2).size(), 1u);
    EXPECT_FALSE(memsys.busy());
}

TEST(MemSystem, PerfectNodeFetchOnlyAffectsRtaTraffic)
{
    sim::Config cfg;
    cfg.perfectNodeFetch = true;
    sim::StatRegistry stats;
    MemSystem memsys(cfg, stats);
    MemRequest rta;
    rta.addr = 0x9000;
    rta.smId = 0;
    rta.source = RequestSource::RtaNode;
    memsys.sendRequest(rta);
    EXPECT_EQ(memsys.rtaResponses(0).size(), 1u); // instant
    memsys.rtaResponses(0).clear();

    sim::Cycle clock = 0;
    sim::Cycle core = timeRead(memsys, 0, 0xA000, clock);
    EXPECT_GT(core, cfg.l1LatencyCycles); // normal path for core loads
}

TEST(MemSystem, WritesConsumeDramBandwidth)
{
    sim::Config cfg;
    sim::StatRegistry stats;
    MemSystem memsys(cfg, stats);
    MemRequest req;
    req.addr = 0x30000;
    req.size = 64;
    req.isWrite = true;
    req.smId = 0;
    memsys.sendRequest(req);
    sim::Cycle clock = 0;
    while (memsys.busy() && clock < 10000)
        memsys.tick(clock++);
    EXPECT_FALSE(memsys.busy());
    EXPECT_EQ(stats.counterValue("dram.writes"), 1u);
    EXPECT_EQ(stats.counterValue("dram.bytes_written"), 64u);
}

TEST(MemSystem, DramUtilizationBounded)
{
    sim::Config cfg;
    sim::StatRegistry stats;
    MemSystem memsys(cfg, stats);
    sim::Cycle clock = 0;
    for (int i = 0; i < 100; ++i) {
        MemRequest req;
        req.addr = 0x100000 + i * 4096; // distinct lines and channels
        req.size = 128;
        req.smId = i % 8;
        req.tag = i;
        memsys.sendRequest(req);
    }
    while (memsys.busy() && clock < 200000)
        memsys.tick(clock++);
    EXPECT_FALSE(memsys.busy());
    double util = memsys.dramUtilization();
    EXPECT_GT(util, 0.0);
    EXPECT_LE(util, 1.0);
    EXPECT_EQ(stats.counterValue("dram.reads"), 100u);
}
