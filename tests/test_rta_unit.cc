/**
 * @file
 * RtaUnit tests with a synthetic traversal spec: warp-buffer
 * back-pressure, the per-ray state machine, node-fetch coalescing,
 * shader vs native routing, limit-study knobs, and completion callbacks
 * — isolated from the real workloads.
 */

#include <gtest/gtest.h>

#include "api/tta_api.hh"
#include "gpu/gpu.hh"
#include "rta/rta_unit.hh"
#include "rta/traversal_spec.hh"

using namespace tta;

namespace {

/**
 * A linear synthetic traversal: every ray visits `depth` nodes laid out
 * contiguously from a base address; node i pushes node i+1. Lane operand
 * selects a per-ray depth: depth = base_depth + (operand % 4).
 */
class ChainSpec : public rta::TraversalSpec
{
  public:
    ChainSpec(uint64_t node_base, uint32_t base_depth,
              rta::OpKind op = rta::OpKind::RayBox, bool use_shader = false)
        : nodeBase_(node_base), baseDepth_(base_depth), op_(op),
          useShader_(use_shader),
          innerProg_(ttaplus::programs::rayBoxInner()),
          leafProg_(ttaplus::programs::rayTriangleLeaf())
    {}

    void
    initRay(rta::RayState &ray, uint32_t lane_operand) override
    {
        ray.queryId = lane_operand;
        ray.hitCount = baseDepth_ + lane_operand % 4; // remaining visits
        ray.stack.push_back(nodeBase_);
    }

    void
    fetchLines(const rta::RayState &, rta::NodeRef ref,
               std::vector<uint64_t> &lines) const override
    {
        lines.push_back(ref & ~127ull);
    }

    rta::NodeOutcome
    processNode(rta::RayState &ray, rta::NodeRef ref) override
    {
        rta::NodeOutcome out;
        out.op = op_;
        out.useShader = useShader_;
        if (--ray.hitCount > 0)
            ray.stack.push_back(ref + 64);
        ++visits;
        return out;
    }

    void finishRay(rta::RayState &) override { ++finished; }

    const ttaplus::Program &innerProgram() const override
    {
        return innerProg_;
    }
    const ttaplus::Program &leafProgram() const override
    {
        return leafProg_;
    }

    uint64_t visits = 0;
    uint64_t finished = 0;

  private:
    uint64_t nodeBase_;
    uint32_t baseDepth_;
    rta::OpKind op_;
    bool useShader_;
    ttaplus::Program innerProg_;
    ttaplus::Program leafProg_;
};

/** A device driving ChainSpec through the real launcher kernel. */
struct ChainHarness
{
    sim::StatRegistry stats;
    std::unique_ptr<api::TtaDevice> device;
    std::unique_ptr<ChainSpec> spec;

    explicit ChainHarness(sim::Config cfg, uint32_t depth = 6,
                          rta::OpKind op = rta::OpKind::RayBox,
                          bool use_shader = false)
    {
        device = std::make_unique<api::TtaDevice>(cfg, stats);
        uint64_t base = device->memory().alloc(1 << 20, 128);
        spec = std::make_unique<ChainSpec>(base, depth, op, use_shader);
        api::TtaPipelineDesc desc("chain");
        static const ttaplus::Program inner =
            ttaplus::programs::rayBoxInner();
        static const ttaplus::Program leaf =
            ttaplus::programs::rayTriangleLeaf();
        desc.decodeR({4}).decodeI({4}).decodeL({4}).configI(&inner)
            .configL(&leaf);
        device->bindPipeline(api::TtaPipeline::create(desc), spec.get());
    }

    sim::Cycle run(uint64_t n) { return device->cmdTraverseTree(n); }
};

} // namespace

TEST(RtaUnit, EveryRayCompletesWithCorrectVisitCount)
{
    sim::Config cfg;
    cfg.accelMode = sim::AccelMode::Tta;
    ChainHarness h(cfg, 6);
    h.run(1000);
    EXPECT_EQ(h.spec->finished, 1000u);
    // depth = 6 + operand % 4 -> 250 rays each of depth 6, 7, 8, 9.
    EXPECT_EQ(h.spec->visits, 250u * (6 + 7 + 8 + 9));
}

TEST(RtaUnit, WarpBufferLimitsConcurrencyNotCorrectness)
{
    sim::Config small_cfg;
    small_cfg.accelMode = sim::AccelMode::Tta;
    small_cfg.warpBufferWarps = 1;
    ChainHarness small(small_cfg);
    sim::Cycle one = small.run(2048);
    EXPECT_EQ(small.spec->finished, 2048u);

    sim::Config big_cfg;
    big_cfg.accelMode = sim::AccelMode::Tta;
    big_cfg.warpBufferWarps = 8;
    ChainHarness big(big_cfg);
    sim::Cycle eight = big.run(2048);
    EXPECT_EQ(big.spec->finished, 2048u);
    EXPECT_LT(eight, one); // more traversals in flight
}

TEST(RtaUnit, NodeFetchCoalescing)
{
    // All rays walk the same node chain: the RTA's memory scheduler must
    // merge their fetches (far fewer memory reads than visits).
    sim::Config cfg;
    cfg.accelMode = sim::AccelMode::Tta;
    ChainHarness h(cfg, 8);
    h.run(4096);
    uint64_t reads = h.stats.counterValue("memsys.reads");
    EXPECT_GT(h.spec->visits, 4u * reads);
}

TEST(RtaUnit, PerfectNodeFetchSpeedsTraversal)
{
    sim::Config cfg;
    cfg.accelMode = sim::AccelMode::Tta;
    ChainHarness normal(cfg, 10);
    sim::Cycle base = normal.run(1024);

    sim::Config perfect = cfg;
    perfect.perfectNodeFetch = true;
    ChainHarness fast(perfect, 10);
    sim::Cycle quick = fast.run(1024);
    EXPECT_LT(quick, base);
}

TEST(RtaUnit, ShaderRoutingReachesTheSm)
{
    sim::Config cfg;
    cfg.accelMode = sim::AccelMode::Tta;
    ChainHarness native(cfg, 4, rta::OpKind::RayBox, false);
    native.run(256);
    EXPECT_EQ(native.stats.counterValue("shader.calls"), 0u);

    ChainHarness shader(cfg, 4, rta::OpKind::RaySphere, true);
    shader.run(256);
    EXPECT_GT(shader.stats.counterValue("shader.calls"), 0u);
    // The shader's dynamic instructions land in the core counters
    // (Fig 19/20 accounting).
    EXPECT_GT(shader.stats.counterValue("core.insts_alu"),
              native.stats.counterValue("core.insts_alu"));
}

TEST(RtaUnit, TtaPlusRunsProgramsPerVisit)
{
    sim::Config cfg;
    cfg.accelMode = sim::AccelMode::TtaPlus;
    ChainHarness h(cfg, 5);
    h.run(512);
    uint64_t tests = h.stats.counterValue("ttaplus.tests");
    EXPECT_EQ(tests, h.spec->visits);
    EXPECT_EQ(h.stats.counterValue("ttaplus.uops"),
              tests * ttaplus::programs::rayBoxInner().size());
}

TEST(RtaUnit, IntersectionLatencyScaleSlowsTta)
{
    sim::Config cfg;
    cfg.accelMode = sim::AccelMode::Tta;
    ChainHarness normal(cfg, 12);
    sim::Cycle base = normal.run(512);

    sim::Config slow = cfg;
    slow.intersectionLatencyScale = 10.0;
    ChainHarness scaled(slow, 12);
    sim::Cycle slower = scaled.run(512);
    EXPECT_GT(slower, base);
}

TEST(RtaUnit, WarpBufferAccessesAccounted)
{
    sim::Config cfg;
    cfg.accelMode = sim::AccelMode::Tta;
    ChainHarness h(cfg, 4);
    h.run(128);
    // One read per dispatched node, writes for setup/results/updates.
    EXPECT_EQ(h.stats.counterValue("rta.warp_buffer_reads"),
              h.spec->visits);
    EXPECT_GE(h.stats.counterValue("rta.warp_buffer_writes"),
              h.spec->visits + 128);
}

TEST(RtaUnit, OccupancyHistogramBounded)
{
    sim::Config cfg;
    cfg.accelMode = sim::AccelMode::Tta;
    cfg.warpBufferWarps = 4;
    ChainHarness h(cfg, 8);
    h.run(4096);
    const auto *occ = h.stats.findHistogram("rta.warp_occupancy");
    ASSERT_NE(occ, nullptr);
    EXPECT_LE(occ->maxValue(), 4.0);
    EXPECT_GT(occ->mean(), 0.0);
}

TEST(RtaUnit, PartialWarpTraversal)
{
    sim::Config cfg;
    cfg.accelMode = sim::AccelMode::Tta;
    ChainHarness h(cfg, 5);
    h.run(33); // one full warp + one lane
    EXPECT_EQ(h.spec->finished, 33u);
}
