/**
 * @file
 * Accelerator-side tests: the TTA query-key unit against Algorithm 1,
 * data layouts, TTA+ programs (Table III) and engine timing, the
 * fixed-function pipeline model, the shader model, and the RTA unit
 * driven end-to-end through the public API.
 */

#include <gtest/gtest.h>

#include <limits>

#include "api/tta_api.hh"
#include "geom/intersect.hh"
#include "power/area.hh"
#include "rta/pipeline.hh"
#include "rta/shader_model.hh"
#include "sim/rng.hh"
#include "tta/layout.hh"
#include "tta/query_key_unit.hh"
#include "ttaplus/engine.hh"
#include "ttaplus/program.hh"

using namespace tta;
namespace ttam = ::tta::tta; // the TTA module (disambiguated)

// --- Query-Key unit (Fig 8/9) ---------------------------------------------

TEST(QueryKeyUnit, MatchesAlgorithm1OnSweep)
{
    sim::Rng rng(3);
    constexpr float inf = std::numeric_limits<float>::infinity();
    for (int trial = 0; trial < 2000; ++trial) {
        // Ascending keys with +inf padding, like the serializer emits.
        int n_real = 1 + static_cast<int>(rng.nextBounded(8));
        float keys[9];
        float v = 0.0f;
        for (int i = 0; i < 9; ++i) {
            if (i < n_real) {
                v += 2.0f * (1 + rng.nextBounded(5));
                keys[i] = v;
            } else {
                keys[i] = inf;
            }
        }
        float query = rng.nextFloat() < 0.4f
            ? keys[rng.nextBounded(n_real)]           // exact hit
            : 2.0f * rng.nextBounded(40) + 1.0f;      // between keys
        auto hw = ttam::queryKeyUnit(query, keys);
        auto ref = geom::queryKeyCompare(query, keys, 9);
        EXPECT_EQ(hw.found, ref.found) << "query " << query;
        if (ref.found)
            EXPECT_EQ(hw.matchIndex, static_cast<uint32_t>(ref.matchIndex));
        else
            EXPECT_EQ(hw.childIndex, static_cast<uint32_t>(ref.child));
    }
}

TEST(QueryKeyUnit, NineChildrenResolvable)
{
    float keys[9] = {10, 20, 30, 40, 50, 60, 70, 80, 90};
    for (int c = 0; c < 9; ++c) {
        float q = 5.0f + 10.0f * c;
        auto out = ttam::queryKeyUnit(q, keys);
        EXPECT_FALSE(out.found);
        EXPECT_EQ(out.childIndex, static_cast<uint32_t>(c));
    }
    EXPECT_EQ(ttam::queryKeyUnit(95.0f, keys).childIndex, 9u);
}

// --- Data layouts -----------------------------------------------------------

TEST(DataLayout, OffsetsAndRegisters)
{
    ttam::DataLayout layout("ray", {12, 12, 4, 4});
    EXPECT_EQ(layout.numFields(), 4u);
    EXPECT_EQ(layout.fieldOffset(0), 0u);
    EXPECT_EQ(layout.fieldOffset(1), 12u);
    EXPECT_EQ(layout.fieldOffset(3), 28u);
    EXPECT_EQ(layout.totalBytes(), 32u);
    EXPECT_EQ(layout.numRegisters(), 8u);
}

TEST(DataLayout, RejectsOversizedAndMisaligned)
{
    EXPECT_THROW(ttam::DataLayout("big", {60, 8}), sim::FatalError);
    EXPECT_THROW(ttam::DataLayout("odd", {3}), sim::FatalError);
    EXPECT_THROW(ttam::DataLayout("zero", {0}), sim::FatalError);
}

// --- TTA+ programs (Table III) ----------------------------------------------

TEST(TtaPlusPrograms, TableThreeUopCounts)
{
    using namespace ttaplus;
    struct Row
    {
        Program prog;
        uint32_t total;
    };
    // Totals from Table III.
    EXPECT_EQ(programs::queryKeyInner().size(), 12u);
    EXPECT_EQ(programs::queryKeyLeaf().size(), 3u);
    EXPECT_EQ(programs::pointDistInner().size(), 3u);
    EXPECT_EQ(programs::nbodyForceLeaf().size(), 5u);
    EXPECT_EQ(programs::rayBoxInner().size(), 19u);
    EXPECT_EQ(programs::rtnnPointDistLeaf().size(), 5u);
    EXPECT_EQ(programs::raySphereLeaf().size(), 18u);
    EXPECT_EQ(programs::rayTriangleLeaf().size(), 17u);
    EXPECT_EQ(programs::rayTransform().size(), 1u);

    // Per-unit breakdown spot checks (Table III columns).
    auto counts = programs::rayBoxInner().unitCounts();
    EXPECT_EQ(counts[size_t(OpUnit::Vec3AddSub)], 2u);
    EXPECT_EQ(counts[size_t(OpUnit::Multiplier)], 6u);
    EXPECT_EQ(counts[size_t(OpUnit::Rcp)], 3u);
    EXPECT_EQ(counts[size_t(OpUnit::MinMax)] +
                  counts[size_t(OpUnit::MaxMin)],
              6u);
    auto qk = programs::queryKeyInner().unitCounts();
    EXPECT_EQ(qk[size_t(OpUnit::MinMax)] + qk[size_t(OpUnit::MaxMin)], 6u);
    EXPECT_EQ(qk[size_t(OpUnit::Vec3Cmp)], 3u);
    EXPECT_EQ(qk[size_t(OpUnit::Logical)], 3u);
    auto nb = programs::nbodyForceLeaf().unitCounts();
    EXPECT_EQ(nb[size_t(OpUnit::Sqrt)], 1u);
    EXPECT_EQ(nb[size_t(OpUnit::Multiplier)], 3u);
    EXPECT_EQ(nb[size_t(OpUnit::RXform)], 1u);
}

// --- TTA+ engine -------------------------------------------------------------

TEST(TtaPlusEngine, UncontendedLatencyIsSerialPlusHops)
{
    sim::Config cfg;
    sim::StatRegistry stats;
    ttaplus::TtaPlusEngine engine(cfg, stats);
    auto prog = ttaplus::programs::pointDistInner(); // 4+5+1 latency
    sim::Cycle done = engine.execute(1000, prog, false);
    sim::Cycle expected = 1000 + prog.serialLatency() +
        prog.size() * cfg.icntHopLatency;
    EXPECT_EQ(done, expected);
}

TEST(TtaPlusEngine, ContentionQueuesButConserves)
{
    sim::Config cfg;
    sim::StatRegistry stats;
    ttaplus::TtaPlusEngine engine(cfg, stats);
    auto prog = ttaplus::programs::nbodyForceLeaf();
    sim::Cycle solo = engine.execute(0, prog, true);
    // A burst of concurrent tests: later ones queue behind earlier ones,
    // completion times must be non-decreasing and bounded by serialized
    // worst case.
    sim::Cycle prev = solo;
    for (int i = 0; i < 64; ++i) {
        sim::Cycle done = engine.execute(0, prog, true);
        EXPECT_GE(done, prev - 1); // monotone up to unit sharing
        prev = done;
    }
    // II=1 units: the 65th test completes far earlier than 65 serialized
    // program latencies.
    EXPECT_LT(prev, 65u * solo);
}

TEST(TtaPlusEngine, BackfillAvoidsConvoy)
{
    // A test delayed upstream must not block idle unit slots for later
    // arrivals (regression for the convoy-effect bug).
    sim::Config cfg;
    sim::StatRegistry stats;
    ttaplus::TtaPlusEngine engine(cfg, stats);
    auto prog = ttaplus::programs::pointDistInner();
    sim::Cycle first = engine.execute(0, prog, false);
    // A test arriving much later gets the same uncontended latency.
    sim::Cycle later = engine.execute(100000, prog, false);
    EXPECT_EQ(later - 100000, first - 0);
}

TEST(TtaPlusEngine, BusyCyclesTrackLatencySum)
{
    sim::Config cfg;
    sim::StatRegistry stats;
    ttaplus::TtaPlusEngine engine(cfg, stats);
    engine.execute(0, ttaplus::programs::nbodyForceLeaf(), true);
    EXPECT_EQ(engine.busyCycles(ttaplus::OpUnit::Sqrt), 11u);
    EXPECT_EQ(engine.busyCycles(ttaplus::OpUnit::Multiplier), 12u);
    EXPECT_EQ(engine.busyCycles(ttaplus::OpUnit::RXform), 4u);
}

// --- Fixed-function pipeline --------------------------------------------------

TEST(IntersectionPipeline, PipelinedThroughput)
{
    sim::StatRegistry stats;
    rta::IntersectionPipeline pipe("p", 4, 13, stats);
    // 8 independent tests on 4 sets: two waves of issue, completion
    // spread = issue conflicts only.
    sim::Cycle done = pipe.dispatch(100, 8);
    EXPECT_EQ(done, 100 + 1 + 13); // second wave issues at +1
    pipe.complete(8);
    EXPECT_EQ(pipe.inflight(), 0u);
    EXPECT_EQ(pipe.peak(), 8u);
}

TEST(IntersectionPipeline, SingleSetSerializesIssue)
{
    sim::StatRegistry stats;
    rta::IntersectionPipeline pipe("p", 1, 10, stats);
    sim::Cycle done = pipe.dispatch(0, 5);
    EXPECT_EQ(done, 4 + 10); // last of five II=1 issues
}

// --- Shader model ---------------------------------------------------------------

TEST(ShaderModel, SerializesAndCountsInstructions)
{
    sim::StatRegistry stats;
    rta::ShaderModel shader(stats);
    sim::Cycle a = shader.execute(0, 4);
    sim::Cycle b = shader.execute(0, 4);
    EXPECT_GT(b, a); // the SM services shader calls serially
    EXPECT_EQ(stats.counterValue("shader.calls"), 8u);
    EXPECT_EQ(stats.counterValue("core.lane_insts"),
              8u * rta::ShaderModel::kInstsPerCall);
}

// --- Public API validation --------------------------------------------------------

TEST(TtaApi, PipelineRequiresLayouts)
{
    api::TtaPipelineDesc desc("incomplete");
    EXPECT_THROW(api::TtaPipeline::create(desc), sim::FatalError);
    desc.decodeR({4}).decodeI({4}).decodeL({4});
    EXPECT_NO_THROW(api::TtaPipeline::create(desc));
}

TEST(TtaApi, TtaPlusRequiresPrograms)
{
    sim::Config cfg;
    cfg.accelMode = sim::AccelMode::TtaPlus;
    sim::StatRegistry stats;
    api::TtaDevice device(cfg, stats);

    api::TtaPipelineDesc desc("noprogs");
    desc.decodeR({4}).decodeI({4}).decodeL({4});
    api::TtaPipeline pipeline = api::TtaPipeline::create(desc);

    class DummySpec : public rta::TraversalSpec
    {
      public:
        void initRay(rta::RayState &, uint32_t) override {}
        void fetchLines(const rta::RayState &, rta::NodeRef,
                        std::vector<uint64_t> &) const override
        {}
        rta::NodeOutcome processNode(rta::RayState &,
                                     rta::NodeRef) override
        {
            return {};
        }
        void finishRay(rta::RayState &) override {}
        const ttaplus::Program &innerProgram() const override
        {
            static ttaplus::Program p = ttaplus::programs::rayBoxInner();
            return p;
        }
        const ttaplus::Program &leafProgram() const override
        {
            return innerProgram();
        }
    } spec;
    EXPECT_THROW(device.bindPipeline(pipeline, &spec), sim::FatalError);
}

TEST(TtaApi, BaselineGpuHasNoAccelerators)
{
    sim::Config cfg;
    sim::StatRegistry stats;
    api::TtaDevice device(cfg, stats);
    EXPECT_FALSE(device.hasAccelerators());
}

// --- Area model (Table IV) ------------------------------------------------------

TEST(AreaModel, TableFourDerivedQuantities)
{
    using power::AreaModel;
    EXPECT_NEAR(AreaModel::baselineTotal(), 602078.1, 0.5);
    // Component sums land within the paper's per-row rounding.
    EXPECT_NEAR(AreaModel::ttaPlusWithoutSqrt(), 536949.1, 5.0);
    EXPECT_NEAR(AreaModel::ttaPlusTotal(), 821316.3, 5.0);
    // Paper: -10.8% without SQRT, +36.4% with, +1.8% TTA Ray-Box delta.
    EXPECT_NEAR(AreaModel::ttaPlusNoSqrtDeltaPercent(), -10.8, 0.1);
    EXPECT_NEAR(AreaModel::ttaPlusDeltaPercent(), 36.4, 0.1);
    EXPECT_NEAR(AreaModel::ttaRayBoxDeltaPercent(), 1.8, 0.05);
}
