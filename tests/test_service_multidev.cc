/**
 * @file
 * Multi-device determinism tests for the traversal service
 * (service/service.hh on a service/device_group.hh group):
 *
 *  - the full determinism matrix: devices {1, 2, 4} x simulation
 *    kernels {event-driven, threaded} x staging {pipelined, serial}
 *    must agree bit-for-bit on the global batch log, every per-device
 *    batch log, every latency histogram and the whole stat registry,
 *  - the same matrix again per scheduling policy (size / affinity /
 *    steal / full at two devices), with the scheduler's steal log in
 *    the oracle — placement and stealing are pure functions of the
 *    virtual clock on every kernel,
 *  - histogram merges are exact: the per-device latency histograms
 *    merge to exactly the service-wide histogram, and so do the
 *    per-SLO-class histograms,
 *  - per-device batch logs partition the global (retirement-order) log:
 *    filtering the global log by dev=d reproduces device d's own log,
 *  - the dispatcher balances: with saturating traffic every device in
 *    the group completes batches,
 *  - a golden-stat snapshot of the two-device config
 *    (tests/golden/service_multidev.json, TTA_UPDATE_GOLDEN=1
 *    regenerates).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "json_lite.hh"
#include "service/service.hh"
#include "sim/ticked.hh"

#ifndef TTA_GOLDEN_DIR
#error "TTA_GOLDEN_DIR must point at tests/golden"
#endif

using namespace ::tta::service;
namespace sim = ::tta::sim;
namespace testjson = ::tta::testjson;

namespace {

sim::Config
serviceConfig()
{
    sim::Config cfg;
    cfg.accelMode = sim::AccelMode::Tta;
    return cfg;
}

constexpr uint64_t kSeed = 17;

/** Three tenants (one latency-sensitive) on @p num_devices devices,
 *  arrivals fast enough to keep several devices busy at once. */
ServiceReport
runMultidevService(const sim::Config &cfg, sim::StatRegistry &stats,
                   uint32_t num_devices, bool pipelined,
                   SchedPolicy sched = SchedPolicy::LeastLoaded)
{
    ServicePolicy policy;
    policy.maxBatch = 48;
    policy.maxWaitCycles = 20000;
    policy.lsMaxWaitCycles = 4000;
    policy.numDevices = num_devices;
    policy.pipelinedStaging = pipelined;
    policy.sched = sched;
    TraversalService svc(cfg, stats, policy);
    svc.addTenant(std::make_unique<BTreeTenant>("btree", 400, 128,
                                                kSeed),
                  SloClass::LatencySensitive);
    svc.addTenant(std::make_unique<RadiusTenant>("radius", 512, 32,
                                                 1.0f, kSeed));
    svc.addTenant(std::make_unique<BTreeTenant>("btree2", 300, 96,
                                                kSeed + 1));

    TrafficConfig tc;
    tc.process = ArrivalProcess::Poisson;
    tc.totalQueries = 1400;
    tc.meanGapCycles = 12.0; // saturates one device, loads four
    tc.tenantWeights = {0.55, 0.25, 0.20};
    TrafficGen gen(tc, svc.numTenants(), kSeed ^ 0xfeedfaceull);
    return svc.run(gen);
}

/** Merge all per-device histograms; must equal the total exactly. */
bool
deviceMergeIsExact(const ServiceReport &rep, std::string *why)
{
    LatencyHistogram merged;
    for (const auto &dr : rep.devices)
        merged.merge(dr.latency);
    if (merged.dumpString() != rep.latency.dumpString()) {
        *why = "device merge:\n" + merged.dumpString() + "vs total:\n" +
               rep.latency.dumpString();
        return false;
    }
    LatencyHistogram classes;
    for (const auto &cr : rep.classes)
        classes.merge(cr.latency);
    if (classes.dumpString() != rep.latency.dumpString()) {
        *why = "class merge:\n" + classes.dumpString() + "vs total:\n" +
               rep.latency.dumpString();
        return false;
    }
    return true;
}

/** Bit-identity oracle: global + per-device logs, every histogram. */
std::string
oracleString(const ServiceReport &rep)
{
    std::string s = rep.batchLog;
    s += "total:" + rep.latency.dumpString();
    for (const auto &tr : rep.tenants) {
        s += tr.name + ":" + tr.latency.dumpString();
        s += tr.name + ".wait:" + tr.queueWait.dumpString();
    }
    for (size_t d = 0; d < rep.devices.size(); ++d) {
        s += "dev" + std::to_string(d) + ":" + rep.devices[d].batchLog;
        s += "dev" + std::to_string(d) + ".lat:" +
             rep.devices[d].latency.dumpString();
    }
    for (uint32_t c = 0; c < kNumSloClasses; ++c) {
        s += std::string(sloClassName(static_cast<SloClass>(c))) + ":" +
             rep.classes[c].latency.dumpString();
    }
    s += "steals=" + std::to_string(rep.steals) + ":" + rep.stealLog;
    return s;
}

/** Drop the "b<k> " prefix of one batch-log line. */
std::string
stripBatchNumber(const std::string &line)
{
    size_t sp = line.find(' ');
    return sp == std::string::npos ? line : line.substr(sp + 1);
}

} // namespace

// ---------------------------------------------------------------------
// The determinism matrix.
// ---------------------------------------------------------------------

TEST(ServiceMultiDevice, DeterminismMatrix)
{
    struct Variant
    {
        const char *name;
        sim::Simulator::Kernel kernel;
        unsigned simThreads;
        bool pipelined;
    };
    const Variant variants[] = {
        {"event/serial", sim::Simulator::Kernel::EventDriven, 1,
         false},
        {"threaded2/pipelined", sim::Simulator::Kernel::Threaded, 2,
         true},
        {"threaded2/serial", sim::Simulator::Kernel::Threaded, 2,
         false},
    };

    for (uint32_t devices : {1u, 2u, 4u}) {
        // Reference: event kernel, pipelined staging — run twice to
        // also pin rerun identity.
        sim::StatRegistry refStats;
        ServiceReport ref = runMultidevService(serviceConfig(),
                                               refStats, devices, true);
        ASSERT_EQ(ref.completed, 1400u) << devices << " devices";
        ASSERT_EQ(ref.devices.size(), devices);
        std::string refOracle = oracleString(ref);
        std::string refDump = refStats.dumpString();
        std::string why;
        EXPECT_TRUE(deviceMergeIsExact(ref, &why)) << why;

        {
            sim::StatRegistry stats;
            ServiceReport rerun = runMultidevService(
                serviceConfig(), stats, devices, true);
            ASSERT_EQ(oracleString(rerun), refOracle)
                << devices << " devices: rerun diverged";
            ASSERT_EQ(stats.dumpString(), refDump)
                << devices << " devices: rerun registry diverged";
        }

        for (const Variant &v : variants) {
            sim::Simulator::setDefaultKernel(v.kernel);
            sim::Simulator::setDefaultSimThreads(v.simThreads);
            sim::StatRegistry stats;
            ServiceReport rep = runMultidevService(
                serviceConfig(), stats, devices, v.pipelined);
            sim::Simulator::resetDefaultKernel();
            sim::Simulator::resetDefaultSimThreads();

            EXPECT_EQ(oracleString(rep), refOracle)
                << devices << " devices, " << v.name
                << ": batch logs / histograms diverged";
            EXPECT_EQ(stats.dumpString(), refDump)
                << devices << " devices, " << v.name
                << ": stat registry diverged";
            EXPECT_EQ(rep.makespan, ref.makespan)
                << devices << " devices, " << v.name;
            EXPECT_TRUE(deviceMergeIsExact(rep, &why)) << why;
        }
    }
}

TEST(ServiceMultiDevice, DeterminismMatrixPolicies)
{
    // The scheduler's placement, quota and steal decisions must also
    // be pure functions of the virtual clock: rerun each non-lld
    // policy on two devices across kernels and staging modes, with the
    // steal log in the oracle.
    struct Variant
    {
        const char *name;
        sim::Simulator::Kernel kernel;
        unsigned simThreads;
        bool pipelined;
    };
    const Variant variants[] = {
        {"event/serial", sim::Simulator::Kernel::EventDriven, 1,
         false},
        {"threaded2/pipelined", sim::Simulator::Kernel::Threaded, 2,
         true},
        {"threaded2/serial", sim::Simulator::Kernel::Threaded, 2,
         false},
    };

    for (SchedPolicy pol :
         {SchedPolicy::SizeAware, SchedPolicy::Affinity,
          SchedPolicy::Steal, SchedPolicy::Full}) {
        sim::StatRegistry refStats;
        ServiceReport ref = runMultidevService(serviceConfig(),
                                               refStats, 2, true, pol);
        ASSERT_EQ(ref.completed, 1400u) << schedPolicyName(pol);
        std::string refOracle = oracleString(ref);
        std::string refDump = refStats.dumpString();
        std::string why;
        EXPECT_TRUE(deviceMergeIsExact(ref, &why)) << why;

        {
            sim::StatRegistry stats;
            ServiceReport rerun = runMultidevService(
                serviceConfig(), stats, 2, true, pol);
            ASSERT_EQ(oracleString(rerun), refOracle)
                << schedPolicyName(pol) << ": rerun diverged";
            ASSERT_EQ(stats.dumpString(), refDump)
                << schedPolicyName(pol) << ": rerun registry diverged";
        }

        for (const Variant &v : variants) {
            sim::Simulator::setDefaultKernel(v.kernel);
            sim::Simulator::setDefaultSimThreads(v.simThreads);
            sim::StatRegistry stats;
            ServiceReport rep = runMultidevService(
                serviceConfig(), stats, 2, v.pipelined, pol);
            sim::Simulator::resetDefaultKernel();
            sim::Simulator::resetDefaultSimThreads();

            EXPECT_EQ(oracleString(rep), refOracle)
                << schedPolicyName(pol) << ", " << v.name
                << ": batch/steal logs or histograms diverged";
            EXPECT_EQ(stats.dumpString(), refDump)
                << schedPolicyName(pol) << ", " << v.name
                << ": stat registry diverged";
            EXPECT_EQ(rep.makespan, ref.makespan)
                << schedPolicyName(pol) << ", " << v.name;
        }
    }
}

// ---------------------------------------------------------------------
// Structure of the multi-device report.
// ---------------------------------------------------------------------

TEST(ServiceMultiDevice, PerDeviceLogsPartitionGlobalLog)
{
    sim::StatRegistry stats;
    ServiceReport rep = runMultidevService(serviceConfig(), stats, 4,
                                           true);
    ASSERT_EQ(rep.devices.size(), 4u);

    // Split each device's own log into numbered lines.
    std::vector<std::vector<std::string>> perDev(rep.devices.size());
    for (size_t d = 0; d < rep.devices.size(); ++d) {
        std::istringstream is(rep.devices[d].batchLog);
        std::string line;
        while (std::getline(is, line))
            perDev[d].push_back(stripBatchNumber(line));
    }

    // Filter the global log by its dev= suffix: the subsequence for
    // device d must reproduce device d's log, in order.
    std::vector<size_t> next(rep.devices.size(), 0);
    std::istringstream is(rep.batchLog);
    std::string line;
    uint64_t total = 0;
    while (std::getline(is, line)) {
        size_t tag = line.rfind(" dev=");
        ASSERT_NE(tag, std::string::npos) << line;
        unsigned dev = 0;
        ASSERT_EQ(std::sscanf(line.c_str() + tag, " dev=%u", &dev), 1)
            << line;
        ASSERT_LT(dev, perDev.size());
        std::string body = stripBatchNumber(line.substr(0, tag));
        ASSERT_LT(next[dev], perDev[dev].size())
            << "device " << dev << " log too short";
        EXPECT_EQ(body, perDev[dev][next[dev]++]) << "device " << dev;
        ++total;
    }
    for (size_t d = 0; d < perDev.size(); ++d) {
        EXPECT_EQ(next[d], perDev[d].size())
            << "device " << d << " log has extra lines";
        // Saturating traffic: the dispatcher keeps every device busy.
        EXPECT_GT(rep.devices[d].batches, 0u)
            << "device " << d << " never dispatched";
        EXPECT_EQ(rep.devices[d].batches, perDev[d].size());
    }
    EXPECT_EQ(total, rep.batches);

    // Completions partition too.
    uint64_t completed = 0;
    sim::Cycle busy = 0;
    for (const auto &dr : rep.devices) {
        completed += dr.completed;
        busy += dr.busy;
    }
    EXPECT_EQ(completed, rep.completed);
    EXPECT_EQ(busy, rep.deviceBusy);

    // SLO classes partition completions as well (both are populated).
    uint64_t classCompleted = 0;
    for (const auto &cr : rep.classes) {
        EXPECT_GT(cr.completed, 0u);
        classCompleted += cr.completed;
    }
    EXPECT_EQ(classCompleted, rep.completed);
}

TEST(ServiceMultiDevice, MoreDevicesFinishSooner)
{
    // Same saturating trace on 1 vs 4 devices: the group must shorten
    // the virtual-clock makespan substantially (this is the simulated
    // speedup the overload bench quantifies; here it gates a
    // conservative 1.5x so the test stays robust to timing-model
    // changes).
    sim::StatRegistry s1, s4;
    ServiceReport r1 = runMultidevService(serviceConfig(), s1, 1, true);
    ServiceReport r4 = runMultidevService(serviceConfig(), s4, 4, true);
    ASSERT_EQ(r1.completed, r4.completed);
    EXPECT_GT(r1.makespan, r4.makespan);
    EXPECT_GT(static_cast<double>(r1.makespan),
              1.5 * static_cast<double>(r4.makespan))
        << "4 devices did not shorten the makespan";
}

// ---------------------------------------------------------------------
// Golden snapshot of the two-device config.
// ---------------------------------------------------------------------

namespace {

std::string
goldenPath()
{
    return std::string(TTA_GOLDEN_DIR) + "/service_multidev.json";
}

std::string
snapshotJson(const ServiceReport &rep, const sim::StatRegistry &stats)
{
    std::ostringstream os;
    os << "{\n  \"name\": \"service_multidev\",\n";
    os << "  \"cycles\": " << rep.makespan << ",\n";
    os << "  \"counters\": {";
    bool first = true;
    for (const auto &[key, counter] : stats.counters()) {
        os << (first ? "\n" : ",\n") << "    \"" << key
           << "\": " << counter.value();
        first = false;
    }
    os << "\n  },\n  \"scalars\": {";
    first = true;
    for (const auto &[key, scalar] : stats.scalars()) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", scalar.value());
        os << (first ? "\n" : ",\n") << "    \"" << key << "\": " << buf;
        first = false;
    }
    os << "\n  }\n}\n";
    return os.str();
}

void
diffSection(const char *section, const testjson::Value &golden,
            const testjson::Value &current)
{
    const auto &want = golden.at(section).asObject();
    const auto &got = current.at(section).asObject();
    for (const auto &[key, value] : want) {
        auto it = got.find(key);
        if (it == got.end()) {
            ADD_FAILURE() << section << " stat '" << key
                          << "' disappeared (golden value "
                          << value.asNumber() << ")";
            continue;
        }
        EXPECT_EQ(it->second.asNumber(), value.asNumber())
            << section << " stat '" << key << "' drifted";
    }
    for (const auto &[key, value] : got) {
        EXPECT_TRUE(want.count(key))
            << "new " << section << " stat '" << key << "' (value "
            << value.asNumber()
            << ") not in golden snapshot; regenerate with "
               "TTA_UPDATE_GOLDEN=1";
    }
}

} // namespace

TEST(ServiceMultiDeviceGolden, MatchesSnapshot)
{
    sim::StatRegistry stats;
    ServiceReport rep = runMultidevService(serviceConfig(), stats, 2,
                                           true);
    std::string current = snapshotJson(rep, stats);

    if (std::getenv("TTA_UPDATE_GOLDEN")) {
        std::ofstream out(goldenPath());
        ASSERT_TRUE(out) << "cannot write " << goldenPath();
        out << current;
        GTEST_SKIP() << "regenerated " << goldenPath();
    }

    std::ifstream in(goldenPath());
    ASSERT_TRUE(in) << "missing golden snapshot " << goldenPath()
                    << "; generate with TTA_UPDATE_GOLDEN=1";
    std::stringstream ss;
    ss << in.rdbuf();
    testjson::Value golden = testjson::parse(ss.str());
    testjson::Value now = testjson::parse(current);
    EXPECT_EQ(static_cast<uint64_t>(golden.at("cycles").asNumber()),
              rep.makespan)
        << "service makespan drifted";
    diffSection("counters", golden, now);
    diffSection("scalars", golden, now);
}
