/**
 * @file
 * R-Tree extension tests: STR build invariants, serialization round
 * trip, reference-vs-brute-force queries, the device workload on every
 * supported hardware level, and the child-prefetcher knob.
 */

#include <gtest/gtest.h>

#include "sim/rng.hh"
#include "trees/rtree.hh"
#include "workloads/rtree_workload.hh"

using namespace tta;
using namespace ::tta::workloads;
using trees::Rect2D;
using trees::RTree;

namespace {

std::vector<Rect2D>
randomRects(size_t n, uint64_t seed)
{
    sim::Rng rng(seed);
    std::vector<Rect2D> rects;
    for (size_t i = 0; i < n; ++i) {
        float cx = rng.uniform(1.0f, 199.0f);
        float cy = rng.uniform(1.0f, 199.0f);
        float w = rng.uniform(0.1f, 1.5f);
        float h = rng.uniform(0.1f, 1.5f);
        rects.push_back({cx - w, cy - h, cx + w, cy + h});
    }
    return rects;
}

} // namespace

TEST(Rect2D, OverlapSemantics)
{
    Rect2D a{0, 0, 2, 2};
    EXPECT_TRUE(a.overlaps({1, 1, 3, 3}));
    EXPECT_TRUE(a.overlaps({2, 2, 3, 3})); // touching counts
    EXPECT_FALSE(a.overlaps({2.1f, 0, 3, 2}));
    EXPECT_TRUE(a.overlaps({-1, -1, 5, 5})); // containment
    EXPECT_TRUE((Rect2D{0.5f, 0.5f, 1, 1}.overlaps(a)));
}

TEST(RTree, CountMatchesBruteForce)
{
    auto rects = randomRects(4000, 5);
    RTree tree(rects);
    sim::Rng rng(6);
    for (int trial = 0; trial < 100; ++trial) {
        float cx = rng.uniform(0.0f, 200.0f);
        float cy = rng.uniform(0.0f, 200.0f);
        float e = rng.uniform(0.5f, 8.0f);
        Rect2D q{cx - e, cy - e, cx + e, cy + e};
        uint32_t brute = 0;
        for (const auto &r : rects)
            brute += q.overlaps(r);
        EXPECT_EQ(tree.countOverlaps(q), brute) << "trial " << trial;
    }
}

TEST(RTree, StructureInvariants)
{
    RTree tree(randomRects(5000, 7));
    EXPECT_EQ(tree.numObjects(), 5000u);
    // Fanout-7 STR: height ~ ceil(log7(5000/7)) + 1.
    EXPECT_GE(tree.height(), 3u);
    EXPECT_LE(tree.height(), 6u);
    // A whole-world query returns everything.
    EXPECT_EQ(tree.countOverlaps({-10, -10, 210, 210}), 5000u);
    // An empty-region query returns nothing.
    EXPECT_EQ(tree.countOverlaps({500, 500, 501, 501}), 0u);
}

TEST(RTree, SerializedImageConsistent)
{
    RTree tree(randomRects(800, 9));
    mem::GlobalMemory gmem(8u << 20);
    uint64_t root = tree.serialize(gmem);

    // Walk the serialized tree for one query and compare to the host.
    sim::Rng rng(10);
    using L = trees::RTreeNodeLayout;
    for (int trial = 0; trial < 25; ++trial) {
        float cx = rng.uniform(5.0f, 195.0f);
        float cy = rng.uniform(5.0f, 195.0f);
        Rect2D q{cx - 3, cy - 3, cx + 3, cy + 3};
        uint32_t count = 0;
        std::vector<uint64_t> stack{root};
        while (!stack.empty()) {
            uint64_t node = stack.back();
            stack.pop_back();
            uint32_t flags = gmem.read<uint32_t>(node + L::kOffFlags);
            bool leaf = flags & L::kLeafFlag;
            uint32_t n = (flags >> 8) & 0xff;
            uint32_t child_base =
                gmem.read<uint32_t>(node + L::kOffChildBase);
            for (uint32_t i = 0; i < n; ++i) {
                uint64_t e = node + L::kOffEntries + 16ull * i;
                Rect2D rect{gmem.read<float>(e + 0),
                            gmem.read<float>(e + 4),
                            gmem.read<float>(e + 8),
                            gmem.read<float>(e + 12)};
                if (!q.overlaps(rect))
                    continue;
                if (leaf)
                    ++count;
                else
                    stack.push_back(child_base + i * L::kNodeBytes);
            }
        }
        EXPECT_EQ(count, tree.countOverlaps(q));
    }
}

TEST(RTreeWorkload, BaselineAndAcceleratedVerify)
{
    RTreeWorkload wl(8000, 1024, 2.0f, 13);
    sim::Config base_cfg;
    sim::StatRegistry s0;
    RunMetrics base = wl.runBaseline(base_cfg, s0);
    EXPECT_LT(base.simtEfficiency, 0.75); // divergent range queries

    for (auto mode : {sim::AccelMode::Tta, sim::AccelMode::TtaPlus}) {
        sim::Config cfg;
        cfg.accelMode = mode;
        sim::StatRegistry stats;
        RunMetrics m = wl.runAccelerated(cfg, stats);
        EXPECT_LT(m.cycles, base.cycles)
            << sim::accelModeName(mode);
        EXPECT_LT(m.totalInsts(), base.totalInsts() / 4);
    }
}

TEST(RTreeWorkload, ChildPrefetchHelpsOrIsNeutral)
{
    RTreeWorkload wl(8000, 1024, 2.0f, 17);
    sim::Config cfg;
    cfg.accelMode = sim::AccelMode::Tta;
    sim::StatRegistry s0;
    RunMetrics plain = wl.runAccelerated(cfg, s0);

    cfg.rtaChildPrefetch = true;
    sim::StatRegistry s1;
    RunMetrics prefetched = wl.runAccelerated(cfg, s1);
    EXPECT_GT(s1.counterValue("rta.prefetches"), 0u);
    // Never worse than a few percent (prefetch traffic is bounded).
    EXPECT_LE(prefetched.cycles, plain.cycles * 21 / 20);
}
