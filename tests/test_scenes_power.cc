/**
 * @file
 * Tests for the procedural scenes, the RT host reference, the energy
 * model arithmetic, and the metrics plumbing.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "geom/intersect.hh"
#include "power/area.hh"
#include "power/energy.hh"
#include "sim/rng.hh"
#include "trees/bvh.hh"
#include "workloads/metrics.hh"
#include "workloads/raytracing_workload.hh"
#include "workloads/scenes.hh"

using namespace tta;
using namespace ::tta::workloads;

// --- Scene generators ---------------------------------------------------

class AllScenes : public ::testing::TestWithParam<SceneKind>
{};

TEST_P(AllScenes, GeneratesSubstantialDeterministicGeometry)
{
    SceneGeometry a = makeScene(GetParam(), 11);
    SceneGeometry b = makeScene(GetParam(), 11);
    EXPECT_GT(a.primitiveCount(), 500u);
    EXPECT_EQ(a.primitiveCount(), b.primitiveCount());
    if (a.isSphereScene()) {
        EXPECT_EQ(a.spheres[5].first, b.spheres[5].first);
        return;
    }
    ASSERT_FALSE(a.meshes.empty());
    EXPECT_EQ(a.meshes[0].triangles.size(), a.meshes[0].alpha.size());
    EXPECT_EQ(a.meshes[0].triangles[3].v1, b.meshes[0].triangles[3].v1);
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllScenes,
                         ::testing::Values(SceneKind::CornellPt,
                                           SceneKind::SponzaAo,
                                           SceneKind::ShipSh,
                                           SceneKind::TeapotRf,
                                           SceneKind::WkndPt,
                                           SceneKind::MaskAm));

TEST(SceneInstances, TransformsAreMutuallyInverse)
{
    sim::Rng rng(4);
    for (int trial = 0; trial < 50; ++trial) {
        SceneInstance inst = makeInstance(
            0, {rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5)},
            rng.uniform(0.0f, 3.1f), rng.uniform(0.3f, 3.0f));
        geom::Vec3 p = {rng.uniform(-10, 10), rng.uniform(-10, 10),
                        rng.uniform(-10, 10)};
        geom::Vec3 round = trees::transformPoint(
            inst.worldToObject, trees::transformPoint(inst.objectToWorld, p));
        EXPECT_NEAR(geom::length(round - p), 0.0f, 1e-3f);
    }
}

TEST(SceneInstances, AffineTransformPreservesRayParameter)
{
    // The two-level traversal relies on t being consistent across the
    // instance transform (dir transformed linearly, not normalized).
    SceneInstance inst = makeInstance(0, {3, -2, 5}, 0.7f, 1.8f);
    geom::Ray world;
    world.origin = {10, 4, -3};
    world.dir = {-1, 0.2f, 0.5f};
    geom::Ray obj;
    obj.origin = trees::transformPoint(inst.worldToObject, world.origin);
    obj.dir = trees::transformDir(inst.worldToObject, world.dir);
    for (float t : {0.5f, 2.0f, 7.25f}) {
        geom::Vec3 world_pt = world.at(t);
        geom::Vec3 obj_pt = obj.at(t);
        geom::Vec3 mapped = trees::transformPoint(inst.worldToObject,
                                                  world_pt);
        EXPECT_NEAR(geom::length(mapped - obj_pt), 0.0f, 1e-3f);
    }
}

// --- RT host reference vs brute force --------------------------------------

TEST(RtScene, ClosestHitMatchesBruteForceSingleLevel)
{
    RtScene scene(SceneKind::TeapotRf, 5);
    const auto &mesh = scene.geometry().meshes[0];
    sim::Rng rng(6);
    int hits = 0;
    for (int trial = 0; trial < 60; ++trial) {
        geom::Ray ray;
        ray.origin = {rng.uniform(-8, 8), rng.uniform(1, 8), 14.0f};
        ray.dir = geom::normalize({rng.uniform(-0.4f, 0.4f),
                                   rng.uniform(-0.5f, 0.1f), -1.0f});
        RtHit via_bvh = scene.closestHit(ray);

        float best_t = ray.tmax;
        bool hit = false;
        for (size_t i = 0; i < mesh.triangles.size(); ++i) {
            auto h = geom::rayTriangle(ray, mesh.triangles[i].v0,
                                       mesh.triangles[i].v1,
                                       mesh.triangles[i].v2);
            if (h && h->t < best_t) {
                best_t = h->t;
                hit = true;
            }
        }
        EXPECT_EQ(via_bvh.hit, hit);
        if (hit && via_bvh.hit) {
            EXPECT_NEAR(via_bvh.t, best_t, 1e-3f * best_t);
            ++hits;
        }
    }
    EXPECT_GT(hits, 10);
}

TEST(RtScene, TwoLevelMatchesManualInstanceLoop)
{
    RtScene scene(SceneKind::CornellPt, 5);
    ASSERT_TRUE(scene.geometry().twoLevel());
    sim::Rng rng(8);
    for (int trial = 0; trial < 40; ++trial) {
        geom::Ray ray;
        ray.origin = {rng.uniform(-4, 4), rng.uniform(1, 9), 13.0f};
        ray.dir = geom::normalize({rng.uniform(-0.3f, 0.3f),
                                   rng.uniform(-0.4f, 0.1f), -1.0f});
        RtHit via_scene = scene.closestHit(ray);

        // Manual: brute-force every instance's triangles in object space.
        bool hit = false;
        float best_t = ray.tmax;
        for (const auto &inst : scene.geometry().instances) {
            geom::Ray obj;
            obj.origin = trees::transformPoint(inst.worldToObject,
                                               ray.origin);
            obj.dir = trees::transformDir(inst.worldToObject, ray.dir);
            obj.tmax = best_t;
            for (const auto &tri :
                 scene.geometry().meshes[inst.mesh].triangles) {
                auto h = geom::rayTriangle(obj, tri.v0, tri.v1, tri.v2);
                if (h && h->t < best_t) {
                    best_t = h->t;
                    hit = true;
                }
            }
        }
        EXPECT_EQ(via_scene.hit, hit) << "trial " << trial;
        if (hit && via_scene.hit) {
            EXPECT_NEAR(via_scene.t, best_t, 1e-3f * best_t);
        }
    }
}

TEST(RtScene, AlphaPassDeterministicAndMixed)
{
    int passes = 0;
    for (uint32_t prim = 0; prim < 256; ++prim) {
        bool a = RtScene::alphaPass(0, prim);
        EXPECT_EQ(a, RtScene::alphaPass(0, prim));
        passes += a;
    }
    // Roughly half the alpha tests pass (foliage transparency).
    EXPECT_GT(passes, 64);
    EXPECT_LT(passes, 192);
}

TEST(RayTracingWorkload, WavesFollowTheSceneWorkload)
{
    RayTracingWorkload ao(SceneKind::SponzaAo, 16, 16, 3);
    // AO: primary wave + one any-hit wave with up to 2 rays per hit.
    EXPECT_GE(ao.totalRays(), 256u);
    RayTracingWorkload pt(SceneKind::CornellPt, 16, 16, 3);
    EXPECT_GT(pt.totalRays(), 256u); // bounce waves exist
}

TEST(RayTracingWorkload, DepthImageHasContrast)
{
    RayTracingWorkload wl(SceneKind::TeapotRf, 32, 32, 3);
    std::vector<uint8_t> img(32 * 32);
    float tmin = 0, tmax = 0;
    wl.renderDepth(img.data(), &tmin, &tmax);
    EXPECT_LT(tmin, tmax);
    int dark = 0, lit = 0;
    for (uint8_t p : img) {
        dark += p == 0;
        lit += p > 100;
    }
    EXPECT_GT(lit, 50);  // the teapot is visible
    // Something is visible everywhere or not: just require both classes
    // of pixel intensities to appear.
    EXPECT_GT(dark + lit, 100);
}

// --- Energy model arithmetic ---------------------------------------------------

TEST(EnergyModel, BreakdownFromSyntheticCounters)
{
    sim::StatRegistry stats;
    stats.counter("core.lane_insts") += 1000000;
    stats.counter("dram.bytes_read") += 500000;
    stats.counter("l2.hits") += 1000;
    stats.counter("rta.warp_buffer_reads") += 2000;
    stats.counter("rta.warp_buffer_writes") += 3000;
    stats.counter("rta.box.ops") += 10000;

    auto e = power::EnergyModel::compute(stats);
    double expect_core = 1e6 * power::EnergyModel::kCorePerLaneInstJ +
                         5e5 * power::EnergyModel::kDramPerByteJ +
                         1e3 * power::EnergyModel::kL2PerAccessJ;
    EXPECT_NEAR(e.computeCore, expect_core, expect_core * 1e-9);
    EXPECT_NEAR(e.warpBuffer,
                5000 * power::EnergyModel::kWarpBufferAccessJ, 1e-12);
    double box_op = power::AreaModel::kBaselineRayBox *
                    power::EnergyModel::kPowerDensityWPerUm2 /
                    power::EnergyModel::kClockHz;
    EXPECT_NEAR(e.intersection, 10000 * box_op, 10000 * box_op * 1e-9);
    EXPECT_NEAR(e.total(), e.computeCore + e.warpBuffer + e.intersection,
                1e-12);
}

TEST(Metrics, CollectFromSyntheticRegistry)
{
    sim::StatRegistry stats;
    stats.counter("core.issued") += 100;
    stats.counter("core.active_lane_sum") += 1600; // 50% of 32 lanes
    stats.counter("core.insts_alu") += 60;
    stats.counter("core.insts_mem") += 25;
    stats.counter("core.insts_ctrl") += 10;
    stats.counter("core.insts_accel") += 5;
    stats.counter("core.flops") += 640;
    stats.counter("dram.bytes_read") += 64;

    auto m = workloads::collectMetrics(stats, 1234, 0.25);
    EXPECT_EQ(m.cycles, 1234u);
    EXPECT_DOUBLE_EQ(m.simtEfficiency, 0.5);
    EXPECT_DOUBLE_EQ(m.dramUtilization, 0.25);
    EXPECT_EQ(m.totalInsts(), 100u);
    EXPECT_DOUBLE_EQ(m.arithmeticIntensity(), 10.0);
}
