/**
 * @file
 * SIMT GPU tests: kernel builder, SIMT reconvergence stack, functional
 * execution of the ISA, divergence handling, warp votes, scheduling and
 * multi-kernel co-dispatch.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "gpu/gpu.hh"
#include "gpu/kernel.hh"
#include "gpu/simt_stack.hh"
#include "sim/config.hh"

using namespace tta;
using namespace tta::gpu;

// --- SIMT stack ------------------------------------------------------------

TEST(SimtStack, UniformFlow)
{
    SimtStack stack;
    stack.start(0, 0xffffffffu);
    EXPECT_EQ(stack.pc(), 0u);
    stack.advance();
    EXPECT_EQ(stack.pc(), 1u);
    stack.jump(10);
    EXPECT_EQ(stack.pc(), 10u);
    EXPECT_EQ(stack.activeMask(), 0xffffffffu);
}

TEST(SimtStack, DivergeAndReconverge)
{
    SimtStack stack;
    stack.start(5, 0xffffffffu);
    // Branch at pc 5 to target 20, reconv at 30; half the lanes take it.
    stack.branch(0x0000ffffu, 20, 30);
    // Taken side executes first.
    EXPECT_EQ(stack.pc(), 20u);
    EXPECT_EQ(stack.activeMask(), 0x0000ffffu);
    stack.jump(30); // reaches reconvergence: pops to fall-through side
    EXPECT_EQ(stack.pc(), 6u);
    EXPECT_EQ(stack.activeMask(), 0xffff0000u);
    stack.jump(30); // other side reaches reconvergence too
    EXPECT_EQ(stack.pc(), 30u);
    EXPECT_EQ(stack.activeMask(), 0xffffffffu); // merged
}

TEST(SimtStack, IfThenSkipPathPopsImmediately)
{
    // Lanes that branch directly to the reconvergence point must wait
    // there, not run ahead with a partial mask (the warp-vote bug).
    SimtStack stack;
    stack.start(5, 0xfu);
    stack.branch(0x3u, 9, 9); // 2 lanes skip to pc 9 == reconv
    EXPECT_EQ(stack.pc(), 6u);       // then-body executes first
    EXPECT_EQ(stack.activeMask(), 0xcu);
    stack.jump(9);
    EXPECT_EQ(stack.pc(), 9u);
    EXPECT_EQ(stack.activeMask(), 0xfu); // full warp reconverged
}

TEST(SimtStack, EarlyExitScrubsLanes)
{
    SimtStack stack;
    stack.start(0, 0xfu);
    stack.branch(0x3u, 10, 20);
    EXPECT_EQ(stack.activeMask(), 0x3u);
    uint32_t exited = stack.exitLanes(); // taken lanes exit at pc 10
    EXPECT_EQ(exited, 0x3u);
    EXPECT_EQ(stack.activeMask(), 0xcu); // others resume
    stack.jump(20);
    EXPECT_EQ(stack.activeMask(), 0xcu); // exited lanes never return
    stack.exitLanes();
    EXPECT_TRUE(stack.empty());
}

// --- KernelBuilder ---------------------------------------------------------

TEST(KernelBuilder, LabelsResolveAndExitAppended)
{
    KernelBuilder b("t");
    Label top = b.newLabel();
    b.movi(1, 3);
    b.bind(top);
    b.iaddi(1, 1, -1);
    b.branchNZ(1, top);
    KernelProgram prog = b.build();
    ASSERT_EQ(prog.insts.back().op, Opcode::Exit);
    EXPECT_EQ(prog.insts[2].target, 1u);
    EXPECT_EQ(prog.insts[2].reconv, 3u); // fall-through
}

TEST(KernelBuilder, DisassembleNamesEveryOpcode)
{
    KernelBuilder b("t");
    b.fadd(1, 2, 3);
    b.load(4, 5, 8);
    KernelProgram prog = b.build();
    std::string dis = prog.disassemble();
    EXPECT_NE(dis.find("fadd"), std::string::npos);
    EXPECT_NE(dis.find("ld"), std::string::npos);
}

// --- Functional kernel execution ------------------------------------------

namespace {

/** Run a kernel on a fresh GPU and return it for inspection. */
struct KernelRun
{
    sim::StatRegistry stats;
    std::unique_ptr<Gpu> gpu;
    sim::Cycle cycles = 0;

    KernelRun()
    {
        sim::Config cfg;
        gpu = std::make_unique<Gpu>(cfg, stats);
    }
};

} // namespace

TEST(SimtCore, ArithmeticAndParams)
{
    KernelRun run;
    uint64_t out = run.gpu->memory().alloc(4096);
    KernelBuilder b("arith");
    b.tid(1);
    b.param(2, 0);        // out base
    b.ishli(3, 1, 2);
    b.iadd(2, 2, 3);
    b.cvtif(4, 1);        // tid as float
    b.fmuli(4, 4, 2.5f);
    b.faddi(4, 4, 1.0f);  // 2.5*tid + 1
    b.cvtfi(5, 4);
    b.store(2, 5);
    KernelProgram prog = b.build();
    run.cycles = run.gpu->runKernel(prog, 100,
                                    {static_cast<uint32_t>(out)});
    for (uint32_t t = 0; t < 100; ++t) {
        EXPECT_EQ(run.gpu->memory().read<uint32_t>(out + 4 * t),
                  static_cast<uint32_t>(2.5f * t + 1.0f));
    }
    EXPECT_GT(run.cycles, 0u);
}

TEST(SimtCore, DivergentBranchesComputeCorrectly)
{
    KernelRun run;
    uint64_t out = run.gpu->memory().alloc(4096);
    // out[tid] = (tid % 2) ? tid * 3 : tid + 100, via divergent if/else.
    KernelBuilder b("diverge");
    b.tid(1);
    b.movi(2, 1);
    b.iand(2, 1, 2); // odd?
    b.ifThenElse(
        2, [&]() { b.imuli(3, 1, 3); },
        [&]() { b.iaddi(3, 1, 100); });
    b.param(4, 0);
    b.ishli(5, 1, 2);
    b.iadd(4, 4, 5);
    b.store(4, 3);
    KernelProgram prog = b.build();
    run.gpu->runKernel(prog, 64, {static_cast<uint32_t>(out)});
    for (uint32_t t = 0; t < 64; ++t) {
        uint32_t want = (t % 2) ? t * 3 : t + 100;
        EXPECT_EQ(run.gpu->memory().read<uint32_t>(out + 4 * t), want);
    }
    // Divergence must show up in SIMT efficiency (< 100%).
    uint64_t issued = run.stats.counterValue("core.issued");
    uint64_t lanes = run.stats.counterValue("core.active_lane_sum");
    EXPECT_LT(lanes, issued * 32);
}

TEST(SimtCore, DataDependentLoopTripCounts)
{
    KernelRun run;
    uint64_t out = run.gpu->memory().alloc(4096);
    // out[tid] = sum(1..(tid%7)+1) via a divergent do-while loop.
    KernelBuilder b("loop");
    b.tid(1);
    b.movi(5, 0); // accumulator
    b.movi(6, 0); // i
    b.doWhile([&]() -> Reg {
        b.iaddi(6, 6, 1);
        b.iadd(5, 5, 6);
        // continue while i < (tid & 3) + 1
        b.movi(7, 3);
        b.iand(7, 1, 7);
        b.iaddi(7, 7, 1);
        b.setlti(8, 6, 7);
        return 8;
    });
    b.param(9, 0);
    b.ishli(10, 1, 2);
    b.iadd(9, 9, 10);
    b.store(9, 5);
    KernelProgram prog = b.build();
    run.gpu->runKernel(prog, 64, {static_cast<uint32_t>(out)});
    for (uint32_t t = 0; t < 64; ++t) {
        uint32_t n = (t & 3) + 1;
        EXPECT_EQ(run.gpu->memory().read<uint32_t>(out + 4 * t),
                  n * (n + 1) / 2)
            << "tid " << t;
    }
}

TEST(SimtCore, VoteAnyIsWarpWide)
{
    KernelRun run;
    uint64_t out = run.gpu->memory().alloc(4096);
    // pred = (tid == 37): exactly one lane of warp 1. After vote.any,
    // every lane of warp 1 must read 1; warp 0 and warp 2 read 0.
    KernelBuilder b("vote");
    b.tid(1);
    b.movi(2, 37);
    b.seteqi(3, 1, 2);
    b.voteany(3, 3);
    b.param(4, 0);
    b.ishli(5, 1, 2);
    b.iadd(4, 4, 5);
    b.store(4, 3);
    KernelProgram prog = b.build();
    run.gpu->runKernel(prog, 96, {static_cast<uint32_t>(out)});
    for (uint32_t t = 0; t < 96; ++t) {
        uint32_t want = (t >= 32 && t < 64) ? 1 : 0;
        EXPECT_EQ(run.gpu->memory().read<uint32_t>(out + 4 * t), want)
            << "tid " << t;
    }
}

TEST(SimtCore, FloatOpsMatchHost)
{
    KernelRun run;
    uint64_t in = run.gpu->memory().alloc(4096);
    uint64_t out = run.gpu->memory().alloc(4096);
    for (int i = 0; i < 64; ++i)
        run.gpu->memory().write<float>(in + 4 * i, 0.5f + i * 0.37f);

    KernelBuilder b("fmath");
    b.tid(1);
    b.param(2, 0);
    b.ishli(3, 1, 2);
    b.iadd(2, 2, 3);
    b.load(4, 2);     // x
    b.fsqrt(5, 4);
    b.frcp(6, 5);     // 1/sqrt(x)
    b.fmul(7, 4, 6);  // x/sqrt(x)
    b.param(8, 1);
    b.iadd(8, 8, 3);
    b.store(8, 7);
    KernelProgram prog = b.build();
    run.gpu->runKernel(prog, 64,
                       {static_cast<uint32_t>(in),
                        static_cast<uint32_t>(out)});
    for (int i = 0; i < 64; ++i) {
        float x = 0.5f + i * 0.37f;
        float want = x * (1.0f / std::sqrt(x));
        EXPECT_FLOAT_EQ(run.gpu->memory().read<float>(out + 4 * i), want);
    }
}

TEST(Gpu, MoreThreadsThanResidency)
{
    // 8 SMs x 32 warps = 8192 resident threads; launch 3x that.
    KernelRun run;
    uint64_t out = run.gpu->memory().alloc(4 * 30000);
    KernelBuilder b("big");
    b.tid(1);
    b.param(2, 0);
    b.ishli(3, 1, 2);
    b.iadd(2, 2, 3);
    b.imuli(4, 1, 7);
    b.store(2, 4);
    KernelProgram prog = b.build();
    run.gpu->runKernel(prog, 30000, {static_cast<uint32_t>(out)});
    for (uint32_t t = 0; t < 30000; t += 997)
        EXPECT_EQ(run.gpu->memory().read<uint32_t>(out + 4 * t), t * 7);
}

TEST(Gpu, CoScheduledKernelsBothComplete)
{
    KernelRun run;
    uint64_t out_a = run.gpu->memory().alloc(4096);
    uint64_t out_b = run.gpu->memory().alloc(4096);
    KernelBuilder ba("a");
    ba.tid(1);
    ba.param(2, 0);
    ba.ishli(3, 1, 2);
    ba.iadd(2, 2, 3);
    ba.movi(4, 0xa);
    ba.store(2, 4);
    KernelProgram pa = ba.build();
    KernelBuilder bb("b");
    bb.tid(1);
    bb.param(2, 0);
    bb.ishli(3, 1, 2);
    bb.iadd(2, 2, 3);
    bb.movi(4, 0xb);
    bb.store(2, 4);
    KernelProgram pb = bb.build();
    run.gpu->runKernels(
        {Launch{&pa, 256, {static_cast<uint32_t>(out_a)}},
         Launch{&pb, 256, {static_cast<uint32_t>(out_b)}}});
    for (uint32_t t = 0; t < 256; ++t) {
        EXPECT_EQ(run.gpu->memory().read<uint32_t>(out_a + 4 * t), 0xau);
        EXPECT_EQ(run.gpu->memory().read<uint32_t>(out_b + 4 * t), 0xbu);
    }
}

TEST(Gpu, PartialLastWarp)
{
    KernelRun run;
    uint64_t out = run.gpu->memory().alloc(4096);
    KernelBuilder b("partial");
    b.tid(1);
    b.param(2, 0);
    b.ishli(3, 1, 2);
    b.iadd(2, 2, 3);
    b.movi(4, 1);
    b.store(2, 4);
    KernelProgram prog = b.build();
    run.gpu->runKernel(prog, 37, {static_cast<uint32_t>(out)}); // 32 + 5
    for (uint32_t t = 0; t < 37; ++t)
        EXPECT_EQ(run.gpu->memory().read<uint32_t>(out + 4 * t), 1u);
}

TEST(Gpu, InstructionClassCountsPlausible)
{
    KernelRun run;
    KernelBuilder b("mix");
    b.tid(1);
    b.movi(2, 5);
    b.iadd(3, 1, 2);
    b.fsqrt(4, 3);
    KernelProgram prog = b.build();
    run.gpu->runKernel(prog, 32);
    EXPECT_GE(run.stats.counterValue("core.insts_alu"), 3u);
    EXPECT_EQ(run.stats.counterValue("core.insts_sfu"), 1u);
    EXPECT_EQ(run.stats.counterValue("core.insts_ctrl"), 1u); // exit
}
