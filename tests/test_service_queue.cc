/**
 * @file
 * Property/fuzz tests for the service admission queue
 * (service/queue.hh) under randomized enqueue/cancel/deadline
 * interleavings, checked against an independently written shadow model
 * of the dispatch policy. 500+ seeds; per seed we assert:
 *
 *  - no query is dropped or duplicated: every enqueued seq is either
 *    dispatched exactly once or successfully canceled exactly once,
 *  - batches preserve submission order within a tenant,
 *  - with an always-free device, no dispatch happens after the front
 *    query's deadline (rule 1 bounds starvation),
 *  - every selectTenant decision matches the shadow policy (strict
 *    SLO-class priority; within a class EDF with lowest-id ties, then
 *    round-robin full lanes / round-robin drain on per-class cursors),
 *  - a throughput lane never launches while any latency-sensitive lane
 *    has dispatchable work (strict class priority).
 *
 * Two thirds of the seeds mix latency-sensitive and throughput lanes
 * (with a tighter latency-class deadline); the rest keep every lane in
 * the throughput class, pinning the single-class reduction to the
 * original classless policy. The seeds also rotate through the
 * selectTenant overloads: per-tenant quota vectors (the scheduler's
 * size-aware coalescing), preference scores with a bounded-lateness
 * slack (affinity), and the scalar path, so every overload is checked
 * against the one generalized shadow policy.
 *
 * A second fuzz (SchedulerFuzz) drives two identical
 * service/scheduler.hh instances through random place / steal / launch
 * / retire traces and asserts: replay identity (placements, launch
 * order and the steal log are pure functions of the call sequence),
 * conservation (every placed batch launches exactly once), the
 * documented backlog order via a mirror (priority batches ahead of
 * throughput ones, steals splice the victim's tail), and that a
 * throughput launch never bypasses a planned priority batch — the
 * no-SLO-inversion property of deterministic stealing.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <queue>
#include <vector>

#include "service/queue.hh"
#include "service/scheduler.hh"
#include "sim/rng.hh"

using namespace tta::service;
using tta::sim::Cycle;
using tta::sim::Rng;

namespace {

/** Independent reimplementation of the lane state + dispatch policy. */
class ShadowQueue
{
  public:
    explicit ShadowQueue(std::vector<SloClass> classes)
        : classes_(std::move(classes)), lanes_(classes_.size())
    {
    }

    void
    enqueue(const QueryTicket &t)
    {
        lanes_[t.tenant].push_back({t.seq, t.deadline, false});
    }

    bool
    cancel(uint32_t tenant, uint64_t seq)
    {
        for (auto &e : lanes_[tenant])
            if (e.seq == seq)
                return e.canceled ? false : (e.canceled = true, true);
        return false;
    }

    uint64_t
    live(uint32_t tenant) const
    {
        uint64_t n = 0;
        for (const auto &e : lanes_[tenant])
            n += !e.canceled;
        return n;
    }

    uint64_t
    liveTotal() const
    {
        uint64_t n = 0;
        for (uint32_t t = 0; t < lanes_.size(); ++t)
            n += live(t);
        return n;
    }

    /** Deadline of the oldest live entry, or kNoCycle. */
    Cycle
    frontDeadline(uint32_t tenant) const
    {
        for (const auto &e : lanes_[tenant])
            if (!e.canceled)
                return e.deadline;
        return kNoCycle;
    }

    Cycle
    earliestDeadline() const
    {
        Cycle best = kNoCycle;
        for (uint32_t t = 0; t < lanes_.size(); ++t)
            best = std::min(best, frontDeadline(t));
        return best;
    }

    int
    selectTenant(Cycle now, uint32_t max_batch, bool drain) const
    {
        return selectTenant(
            now, std::vector<uint32_t>(lanes_.size(), max_batch), drain,
            std::vector<uint64_t>(lanes_.size(), 0), 0);
    }

    int
    selectTenant(Cycle now, const std::vector<uint32_t> &quota,
                 bool drain, const std::vector<uint64_t> &prefer,
                 Cycle slack) const
    {
        // Strict class priority: the first class (by enum order) with
        // any dispatchable work wins outright.
        for (uint32_t c = 0; c < kNumSloClasses; ++c) {
            SloClass cls = static_cast<SloClass>(c);
            // Rule 1, bounded-lateness EDF: among the expired fronts
            // within @p slack of the earliest, the highest preference
            // wins, then the earliest deadline, then the lowest id —
            // so zero slack / all-zero preference is exact EDF.
            Cycle earliest = kNoCycle;
            for (uint32_t t = 0; t < lanes_.size(); ++t) {
                if (classes_[t] != cls)
                    continue;
                Cycle dl = frontDeadline(t);
                if (dl <= now && dl < earliest)
                    earliest = dl;
            }
            if (earliest != kNoCycle) {
                int best = -1;
                Cycle best_dl = kNoCycle;
                uint64_t best_p = 0;
                for (uint32_t t = 0; t < lanes_.size(); ++t) {
                    if (classes_[t] != cls)
                        continue;
                    Cycle dl = frontDeadline(t);
                    if (dl > now || dl - earliest > slack)
                        continue;
                    if (best < 0 || prefer[t] > best_p ||
                        (prefer[t] == best_p && dl < best_dl)) {
                        best = static_cast<int>(t);
                        best_dl = dl;
                        best_p = prefer[t];
                    }
                }
                return best;
            }
            // Rules 2+3 share one round-robin scan on the class's own
            // cursor: a lane is dispatchable when it meets its quota,
            // or is merely non-empty once the source is drained; the
            // highest preference among the candidates wins, and only a
            // strictly greater score displaces an earlier candidate
            // (so a constant preference is plain round-robin).
            int best = -1;
            uint64_t best_p = 0;
            for (uint32_t i = 0; i < lanes_.size(); ++i) {
                uint32_t t = (cursor_[c] + i) % lanes_.size();
                if (classes_[t] != cls)
                    continue;
                if (live(t) >= quota[t] || (drain && live(t) > 0)) {
                    if (best < 0 || prefer[t] > best_p) {
                        best = static_cast<int>(t);
                        best_p = prefer[t];
                    }
                }
            }
            if (best >= 0)
                return best;
        }
        return -1;
    }

    std::vector<uint64_t>
    popBatch(uint32_t tenant, uint32_t max_batch)
    {
        std::vector<uint64_t> seqs;
        auto &lane = lanes_[tenant];
        while (!lane.empty() && seqs.size() < max_batch) {
            Entry e = lane.front();
            lane.pop_front();
            if (!e.canceled)
                seqs.push_back(e.seq);
        }
        // Trim canceled leftovers so frontDeadline stays O(live).
        while (!lane.empty() && lane.front().canceled)
            lane.pop_front();
        cursor_[static_cast<uint32_t>(classes_[tenant])] =
            (tenant + 1) % static_cast<uint32_t>(lanes_.size());
        return seqs;
    }

  private:
    struct Entry
    {
        uint64_t seq;
        Cycle deadline;
        bool canceled;
    };
    std::vector<SloClass> classes_;
    std::vector<std::deque<Entry>> lanes_;
    uint32_t cursor_[kNumSloClasses] = {0, 0};
};

struct FuzzResult
{
    uint64_t dispatched = 0;
    uint64_t canceled = 0;
};

/** Drive AdmissionQueue + ShadowQueue through one random trace.
 *  (void so ASSERT_* may bail out; totals accumulate into @p res.) */
void
fuzzOne(uint64_t seed, FuzzResult &res)
{
    Rng rng(seed);
    const uint32_t numTenants = 1 + static_cast<uint32_t>(
        rng.nextBounded(4));
    const uint32_t maxBatch = 1 + static_cast<uint32_t>(
        rng.nextBounded(8));
    const Cycle maxWait = 10 + rng.nextBounded(100);
    const uint64_t numArrivals = 50 + rng.nextBounded(400);
    const bool instantService = (seed % 2) == 0;

    // Rotate the selectTenant overloads: some seeds drive per-tenant
    // quota vectors (size-aware coalescing), some add preference
    // scores under a bounded-lateness slack (affinity), and the rest
    // stay on the scalar path so its reduction keeps getting pinned.
    const uint32_t mode = seed % 5;
    const bool useQuota = mode == 1 || mode == 3;
    const bool usePrefer = mode == 3 || mode == 4;
    const Cycle slack = usePrefer ? rng.nextBounded(2 * maxWait) : 0;

    // 2/3 of seeds mix SLO classes; the rest stay all-throughput and
    // pin the single-class reduction to the classless policy.
    const bool mixedClasses = seed % 3 != 0;
    std::vector<SloClass> classes(numTenants, SloClass::Throughput);
    if (mixedClasses) {
        for (auto &c : classes)
            c = rng.nextBounded(2) ? SloClass::LatencySensitive
                                   : SloClass::Throughput;
    }
    // Latency-sensitive lanes get a tighter deadline, like the service.
    const Cycle lsWait = 1 + maxWait / 5;
    auto waitOf = [&](uint32_t tenant) {
        return classes[tenant] == SloClass::LatencySensitive ? lsWait
                                                             : maxWait;
    };

    // Pre-generate the arrival trace (nondecreasing cycles) and the
    // cancel requests keyed off each arrival.
    struct Arr
    {
        Cycle cycle;
        uint32_t tenant;
        Cycle cancelAt; //!< kNoCycle = never
    };
    std::vector<Arr> arrivals;
    Cycle t = 0;
    for (uint64_t i = 0; i < numArrivals; ++i) {
        t += rng.nextBounded(20);
        Arr a;
        a.cycle = t;
        a.tenant = static_cast<uint32_t>(rng.nextBounded(numTenants));
        a.cancelAt = rng.nextBounded(10) < 3
                         ? t + rng.nextBounded(2 * maxWait)
                         : kNoCycle;
        arrivals.push_back(a);
    }

    AdmissionQueue q;
    for (SloClass c : classes)
        q.addLane(c);
    ShadowQueue shadow(classes);

    struct Cancel
    {
        Cycle cycle;
        uint64_t seq;
        uint32_t tenant;
        bool operator>(const Cancel &o) const
        {
            return cycle != o.cycle ? cycle > o.cycle : seq > o.seq;
        }
    };
    std::priority_queue<Cancel, std::vector<Cancel>, std::greater<Cancel>>
        cancels;

    std::map<uint64_t, Cycle> deadlineOf;
    std::map<uint64_t, uint32_t> tenantOf;
    std::map<uint64_t, int> timesDispatched;
    std::map<uint64_t, int> timesCanceled;
    std::vector<uint64_t> lastSeq(numTenants, 0);
    std::vector<bool> lastSeqValid(numTenants, false);

    size_t idx = 0;
    uint64_t nextSeq = 0;
    uint64_t dispatched = 0, canceled = 0;
    Cycle now = 0, freeAt = 0;

    for (int guard = 0; guard < 1000000; ++guard) {
        while (idx < arrivals.size() && arrivals[idx].cycle <= now) {
            const Arr &a = arrivals[idx++];
            QueryTicket ticket;
            ticket.seq = nextSeq++;
            ticket.tenant = a.tenant;
            ticket.arrival = a.cycle;
            ticket.deadline = a.cycle + waitOf(a.tenant);
            q.enqueue(ticket);
            shadow.enqueue(ticket);
            deadlineOf[ticket.seq] = ticket.deadline;
            tenantOf[ticket.seq] = a.tenant;
            if (a.cancelAt != kNoCycle)
                cancels.push({a.cancelAt, ticket.seq, a.tenant});
        }
        while (!cancels.empty() && cancels.top().cycle <= now) {
            Cancel c = cancels.top();
            cancels.pop();
            bool ok = q.cancel(c.tenant, c.seq);
            bool shadowOk = shadow.cancel(c.tenant, c.seq);
            EXPECT_EQ(ok, shadowOk) << "seed " << seed << " seq "
                                    << c.seq;
            if (ok) {
                ++timesCanceled[c.seq];
                ++canceled;
            }
        }

        // The two implementations must agree on all observable state.
        EXPECT_EQ(q.pendingTotal(), shadow.liveTotal());
        EXPECT_EQ(q.earliestDeadline(), shadow.earliestDeadline());
        for (uint32_t tn = 0; tn < numTenants; ++tn)
            EXPECT_EQ(q.pending(tn), shadow.live(tn));

        bool drain = idx == arrivals.size();
        bool dispatchedThisIter = false;
        if (now >= freeAt) {
            // Fresh quota/preference vectors each dispatch tick, like
            // the scheduler refreshing them from moving estimates.
            std::vector<uint32_t> quota(numTenants, maxBatch);
            if (useQuota)
                for (auto &qt : quota)
                    qt = 1 + static_cast<uint32_t>(
                             rng.nextBounded(maxBatch));
            std::vector<uint64_t> prefer(numTenants, 0);
            if (usePrefer)
                for (auto &p : prefer)
                    p = rng.nextBounded(4); // small range: exercise ties
            int sel =
                usePrefer
                    ? q.selectTenant(now, quota, drain, prefer, slack)
                : useQuota ? q.selectTenant(now, quota, drain)
                           : q.selectTenant(now, maxBatch, drain);
            EXPECT_EQ(sel,
                      shadow.selectTenant(now, quota, drain, prefer,
                                          slack))
                << "seed " << seed << " now " << now;
            if (sel >= 0) {
                uint32_t tenant = static_cast<uint32_t>(sel);
                Cycle frontDl = shadow.frontDeadline(tenant);
                std::vector<QueryTicket> batch =
                    q.popBatch(tenant, maxBatch);
                std::vector<uint64_t> expect =
                    shadow.popBatch(tenant, maxBatch);
                ASSERT_EQ(batch.size(), expect.size()) << "seed "
                                                       << seed;
                for (size_t i = 0; i < batch.size(); ++i) {
                    const QueryTicket &ticket = batch[i];
                    EXPECT_EQ(ticket.seq, expect[i]);
                    EXPECT_EQ(ticket.tenant, tenant);
                    EXPECT_EQ(ticket.deadline, deadlineOf[ticket.seq]);
                    // Submission order within a tenant, across batches.
                    if (lastSeqValid[tenant]) {
                        EXPECT_GT(ticket.seq, lastSeq[tenant]);
                    }
                    lastSeq[tenant] = ticket.seq;
                    lastSeqValid[tenant] = true;
                    ++timesDispatched[ticket.seq];
                    ++dispatched;
                    // Rule 1 starvation bound: with the device always
                    // free, nothing launches past its deadline.
                    if (instantService) {
                        EXPECT_LE(now, ticket.deadline)
                            << "seed " << seed << " seq " << ticket.seq;
                    }
                }
                ASSERT_FALSE(batch.empty());
                // If the dispatch was deadline-driven, bounded-lateness
                // EDF within the class: no same-class tenant can hold a
                // live expired deadline more than the slack earlier.
                if (frontDl <= now) {
                    Cycle floor = frontDl > slack ? frontDl - slack : 0;
                    for (uint32_t o = 0; o < numTenants; ++o) {
                        if (o != tenant &&
                            classes[o] == classes[tenant]) {
                            EXPECT_GE(shadow.frontDeadline(o), floor)
                                << "seed " << seed;
                        }
                    }
                }
                // Strict class priority: a throughput launch implies
                // no latency-sensitive lane had dispatchable work
                // (against its own quota).
                if (classes[tenant] == SloClass::Throughput) {
                    for (uint32_t o = 0; o < numTenants; ++o) {
                        if (classes[o] != SloClass::LatencySensitive)
                            continue;
                        EXPECT_FALSE(shadow.frontDeadline(o) <= now ||
                                     shadow.live(o) >= quota[o] ||
                                     (drain && shadow.live(o) > 0))
                            << "seed " << seed << ": throughput lane "
                            << tenant
                            << " launched past dispatchable "
                               "latency-sensitive lane "
                            << o;
                    }
                }
                freeAt = instantService ? now
                                        : now + rng.nextBounded(40);
                dispatchedThisIter = true;
            }
        }
        if (dispatchedThisIter)
            continue;

        if (idx == arrivals.size() && cancels.empty() &&
            q.pendingTotal() == 0)
            break;

        Cycle next = kNoCycle;
        if (idx < arrivals.size())
            next = std::min(next, arrivals[idx].cycle);
        if (!cancels.empty())
            next = std::min(next, cancels.top().cycle);
        if (now < freeAt)
            next = std::min(next, freeAt);
        else
            next = std::min(next, q.earliestDeadline());
        ASSERT_NE(next, kNoCycle) << "seed " << seed << " stuck at "
                                  << now;
        ASSERT_GT(next, now) << "seed " << seed;
        now = next;
    }

    // Conservation: every admitted query left exactly once.
    EXPECT_EQ(q.pendingTotal(), 0u) << "seed " << seed;
    for (uint64_t s = 0; s < nextSeq; ++s) {
        int d = timesDispatched.count(s) ? timesDispatched[s] : 0;
        int c = timesCanceled.count(s) ? timesCanceled[s] : 0;
        EXPECT_EQ(d + c, 1) << "seed " << seed << " seq " << s
                            << " dispatched " << d << " canceled " << c;
    }
    EXPECT_EQ(dispatched + canceled, nextSeq);
    res.dispatched += dispatched;
    res.canceled += canceled;
}

/** Make a batch of @p n minimal tickets for tenant @p t. */
std::shared_ptr<std::vector<QueryTicket>>
makeBatch(uint32_t t, uint32_t n, Cycle now, uint64_t &seq)
{
    auto qs = std::make_shared<std::vector<QueryTicket>>();
    for (uint32_t i = 0; i < n; ++i) {
        QueryTicket tk;
        tk.seq = seq++;
        tk.tenant = t;
        tk.arrival = now;
        tk.deadline = now + 100;
        qs->push_back(tk);
    }
    return qs;
}

/** Drive two identical Schedulers through one random place / steal /
 *  launch / retire trace; assert replay identity, conservation, the
 *  documented backlog order via a mirror, and no SLO inversion. */
void
schedFuzzOne(uint64_t seed)
{
    Rng rng(seed);
    const uint32_t numDevices = 1 + static_cast<uint32_t>(
        rng.nextBounded(4));
    const uint32_t numTenants = 1 + static_cast<uint32_t>(
        rng.nextBounded(5));
    const uint32_t maxBatch = 8 + static_cast<uint32_t>(
        rng.nextBounded(57));
    static const SchedPolicy kPolicies[] = {
        SchedPolicy::SizeAware, SchedPolicy::Affinity,
        SchedPolicy::Steal, SchedPolicy::Full};
    const SchedPolicy policy = kPolicies[seed % 4];
    SchedParams params;
    params.maxBacklog = 1 + static_cast<uint32_t>(rng.nextBounded(3));
    params.minQuota = 1 + static_cast<uint32_t>(rng.nextBounded(8));
    Scheduler sched(policy, params, numDevices, numTenants, maxBatch);
    Scheduler replay(policy, params, numDevices, numTenants, maxBatch);

    // Half the seeds start from a calibration probe, spreading the
    // cost estimates so quotas, placement scores and steal thresholds
    // all diverge per tenant.
    if (seed % 2) {
        for (uint32_t t = 0; t < numTenants; ++t) {
            Cycle elapsed = (1 + rng.nextBounded(200)) * 64;
            sched.calibrate(t, 64, elapsed);
            replay.calibrate(t, 64, elapsed);
        }
    }

    // Mirror of every device's planned backlog, maintained by the
    // *documented* rules only: place() return values, priority-ahead
    // insertion, and tail steals parsed back out of the steal log.
    struct Pending
    {
        uint64_t id;
        bool priority;
    };
    std::vector<std::deque<Pending>> mirror(numDevices);
    auto mirrorInsert = [&](uint32_t d, uint64_t id, bool prio) {
        if (prio) {
            auto it = mirror[d].begin();
            while (it != mirror[d].end() && it->priority)
                ++it;
            mirror[d].insert(it, {id, prio});
        } else {
            mirror[d].push_back({id, prio});
        }
    };

    std::vector<bool> busy(numDevices, false);
    std::vector<Cycle> completeAt(numDevices, 0);
    std::vector<Cycle> launchedAt(numDevices, 0);
    std::vector<uint32_t> inflightTenant(numDevices, 0);
    std::vector<uint64_t> inflightQueries(numDevices, 0);
    std::map<uint64_t, int> timesLaunched;

    const uint64_t numBatches = 60 + rng.nextBounded(100);
    uint64_t placed = 0, launched = 0, seq = 0;
    size_t logSeen = 0;
    Cycle now = 0;

    for (int guard = 0; guard < 1000000 && launched < numBatches;
         ++guard) {
        sched.refreshQuotas();
        replay.refreshQuotas();
        ASSERT_EQ(sched.quotas(), replay.quotas()) << "seed " << seed;
        for (uint32_t a = 0; a < numTenants; ++a) {
            EXPECT_GE(sched.batchQuota(a), params.minQuota);
            EXPECT_LE(sched.batchQuota(a), maxBatch);
            // Size-aware thresholds are monotone in the cost
            // estimate: a pricier tenant never waits for more queries.
            for (uint32_t b = 0; b < numTenants; ++b) {
                if (sched.costPerQueryQ8(a) >= sched.costPerQueryQ8(b)) {
                    EXPECT_LE(sched.batchQuota(a), sched.batchQuota(b))
                        << "seed " << seed;
                }
            }
        }

        while (placed < numBatches && sched.hasRoom()) {
            uint32_t t = static_cast<uint32_t>(
                rng.nextBounded(numTenants));
            uint32_t n = 1 + static_cast<uint32_t>(
                rng.nextBounded(maxBatch));
            bool prio = rng.nextBounded(4) == 0;
            bool expired = rng.nextBounded(4) == 0;
            auto qs = makeBatch(t, n, now, seq);
            uint32_t d = sched.place(t, qs, expired, prio, now);
            uint32_t d2 = replay.place(t, qs, expired, prio, now);
            ASSERT_EQ(d, d2) << "seed " << seed << ": replay placed "
                                "batch " << placed << " elsewhere";
            ASSERT_LT(d, numDevices);
            mirrorInsert(d, placed, prio); // ids are placement order
            ++placed;
            if (rng.nextBounded(3) == 0)
                break; // vary the place/steal/launch interleaving
        }

        sched.rebalance(now);
        replay.rebalance(now);
        // Apply the steal pass to the mirror from the log delta (this
        // also pins the log format and that steals take the tail).
        const std::string &log = sched.stealLog();
        while (logSeen < log.size()) {
            size_t eol = log.find('\n', logSeen);
            ASSERT_NE(eol, std::string::npos) << "seed " << seed;
            std::string line = log.substr(logSeen, eol - logSeen);
            logSeen = eol + 1;
            unsigned long long k = 0, c = 0, b = 0;
            unsigned victim = 0, thief = 0;
            ASSERT_EQ(std::sscanf(line.c_str(),
                                  "s%llu c=%llu b=%llu d%u->%u", &k,
                                  &c, &b, &victim, &thief),
                      5)
                << "seed " << seed << " bad steal line: " << line;
            EXPECT_EQ(c, now) << "seed " << seed;
            ASSERT_LT(victim, numDevices);
            ASSERT_LT(thief, numDevices);
            ASSERT_NE(victim, thief);
            ASSERT_FALSE(mirror[victim].empty()) << "seed " << seed;
            EXPECT_EQ(mirror[victim].back().id, b)
                << "seed " << seed << ": steal was not the tail";
            bool prio = mirror[victim].back().priority;
            mirror[victim].pop_back();
            mirrorInsert(thief, b, prio);
        }

        for (uint32_t d = 0; d < numDevices; ++d) {
            if (busy[d] || !sched.hasReady(d))
                continue;
            Scheduler::Batch b = sched.takeReady(d);
            Scheduler::Batch rb = replay.takeReady(d);
            EXPECT_EQ(b.id, rb.id)
                << "seed " << seed << ": replay launch order diverged";
            ASSERT_FALSE(mirror[d].empty()) << "seed " << seed;
            // Launches must follow the mirror exactly: priority ahead
            // of throughput, FIFO within a class, stolen tails spliced.
            EXPECT_EQ(b.id, mirror[d].front().id) << "seed " << seed;
            EXPECT_EQ(b.priority, mirror[d].front().priority);
            mirror[d].pop_front();
            // No SLO inversion: a throughput launch means no planned
            // priority batch was waiting on this device.
            if (!b.priority) {
                for (const Pending &p : mirror[d]) {
                    EXPECT_FALSE(p.priority)
                        << "seed " << seed << ": throughput batch "
                        << b.id << " launched past priority batch "
                        << p.id;
                }
            }
            sched.onLaunch(d, b, now);
            replay.onLaunch(d, rb, now);
            ++timesLaunched[b.id];
            ++launched;
            busy[d] = true;
            launchedAt[d] = now;
            inflightTenant[d] = b.tenant;
            inflightQueries[d] = b.queries->size();
            // Actual service time is independent of the estimate, so
            // the EWMA keeps moving.
            completeAt[d] = now + 1 + rng.nextBounded(4000);
        }

        Cycle next = kNoCycle;
        for (uint32_t d = 0; d < numDevices; ++d)
            if (busy[d])
                next = std::min(next, completeAt[d]);
        if (next == kNoCycle) {
            now += 1 + rng.nextBounded(100);
            continue;
        }
        now = next;
        for (uint32_t d = 0; d < numDevices; ++d) {
            if (!busy[d] || completeAt[d] != now)
                continue;
            busy[d] = false;
            sched.onRetire(d, inflightTenant[d], inflightQueries[d],
                           now, now - launchedAt[d]);
            replay.onRetire(d, inflightTenant[d], inflightQueries[d],
                            now, now - launchedAt[d]);
        }
    }

    ASSERT_EQ(launched, numBatches) << "seed " << seed << " stalled";
    EXPECT_EQ(sched.plannedBatches(), 0u) << "seed " << seed;
    // Conservation: every placed batch launched exactly once, on the
    // real scheduler and (via id equality above) on the replay.
    for (uint64_t id = 0; id < placed; ++id)
        EXPECT_EQ(timesLaunched[id], 1)
            << "seed " << seed << " batch " << id;
    uint64_t dispatches = 0, steals = 0;
    for (uint32_t d = 0; d < numDevices; ++d) {
        dispatches += sched.dispatches(d);
        steals += sched.steals(d);
    }
    EXPECT_EQ(dispatches, launched) << "seed " << seed;
    EXPECT_EQ(steals, sched.stealsTotal()) << "seed " << seed;
    // Replay identity extends to the whole steal schedule.
    EXPECT_EQ(sched.stealLog(), replay.stealLog()) << "seed " << seed;
    EXPECT_EQ(sched.stealsTotal(), replay.stealsTotal());
}

} // namespace

TEST(ServiceQueueFuzz, RandomTraces)
{
    FuzzResult totals;
    for (uint64_t seed = 1; seed <= 512; ++seed) {
        fuzzOne(seed, totals);
        if (::testing::Test::HasFailure())
            FAIL() << "first failing seed: " << seed;
    }
    // Sanity: the trace generator exercised both paths heavily.
    EXPECT_GT(totals.dispatched, 50000u);
    EXPECT_GT(totals.canceled, 5000u);
}

TEST(ServiceQueue, CancelSemantics)
{
    AdmissionQueue q(2);
    QueryTicket t;
    t.seq = 7;
    t.tenant = 1;
    t.arrival = 10;
    t.deadline = 60;
    q.enqueue(t);
    EXPECT_EQ(q.pending(1), 1u);
    EXPECT_FALSE(q.cancel(1, 99)); // unknown seq
    EXPECT_TRUE(q.cancel(1, 7));
    EXPECT_FALSE(q.cancel(1, 7)); // double-cancel
    EXPECT_EQ(q.pending(1), 0u);
    EXPECT_EQ(q.earliestDeadline(), kNoCycle);
    // Canceled front never dispatches, even on drain.
    EXPECT_EQ(q.selectTenant(1000, 4, /*drain=*/true), -1);
}

TEST(ServiceQueue, DeadlinePreemptsRoundRobin)
{
    // Tenant 1 has a full batch; tenant 0 holds a single expired query.
    AdmissionQueue q(2);
    QueryTicket a;
    a.seq = 0;
    a.tenant = 0;
    a.arrival = 0;
    a.deadline = 50;
    q.enqueue(a);
    for (uint64_t i = 0; i < 4; ++i) {
        QueryTicket b;
        b.seq = 1 + i;
        b.tenant = 1;
        b.arrival = 5;
        b.deadline = 500;
        q.enqueue(b);
    }
    // Before the deadline, the full lane wins (rule 2)...
    EXPECT_EQ(q.selectTenant(/*now=*/40, /*max_batch=*/4, false), 1);
    // ...after it, the expired front preempts (rule 1).
    auto popped = q.popBatch(1, 4);
    ASSERT_EQ(popped.size(), 4u);
    for (uint64_t i = 0; i < 4; ++i) {
        QueryTicket b;
        b.seq = 5 + i;
        b.tenant = 1;
        b.arrival = 55;
        b.deadline = 555;
        q.enqueue(b);
    }
    EXPECT_EQ(q.selectTenant(/*now=*/60, /*max_batch=*/4, false), 0);
}

TEST(ServiceQueue, LatencyClassPreemptsThroughput)
{
    AdmissionQueue q;
    const uint32_t ls = q.addLane(SloClass::LatencySensitive);
    const uint32_t tp = q.addLane(SloClass::Throughput);
    EXPECT_EQ(q.laneClass(ls), SloClass::LatencySensitive);
    EXPECT_EQ(q.laneClass(tp), SloClass::Throughput);

    // One unexpired latency query; a full throughput batch with an
    // *earlier* deadline.
    QueryTicket a;
    a.seq = 0;
    a.tenant = ls;
    a.arrival = 0;
    a.deadline = 100;
    q.enqueue(a);
    for (uint64_t i = 0; i < 4; ++i) {
        QueryTicket b;
        b.seq = 1 + i;
        b.tenant = tp;
        b.arrival = 0;
        b.deadline = 50;
        q.enqueue(b);
    }

    // Nothing expired, latency lane partial: the latency class has no
    // dispatchable work, so the full throughput lane launches.
    EXPECT_EQ(q.selectTenant(/*now=*/10, /*max_batch=*/4, false),
              static_cast<int>(tp));
    // Drain makes the partial latency lane dispatchable, and strict
    // class priority puts it ahead of the full throughput lane.
    EXPECT_EQ(q.selectTenant(/*now=*/10, /*max_batch=*/4, true),
              static_cast<int>(ls));
    // Both fronts expired: the throughput deadline (50) is earlier,
    // but class priority still launches the latency lane first.
    EXPECT_EQ(q.selectTenant(/*now=*/200, /*max_batch=*/4, false),
              static_cast<int>(ls));
}

TEST(SchedulerFuzz, RandomTraces)
{
    for (uint64_t seed = 1; seed <= 512; ++seed) {
        schedFuzzOne(seed);
        if (::testing::Test::HasFailure())
            FAIL() << "first failing seed: " << seed;
    }
}

TEST(Scheduler, PriorityBatchJumpsBacklog)
{
    // Planned priority batches run before planned throughput batches
    // but behind earlier priority plans: place tp, prio, tp, prio on
    // one device and read them back.
    SchedParams params;
    params.maxBacklog = 4;
    Scheduler s(SchedPolicy::SizeAware, params, 1, 1, 16);
    uint64_t seq = 0;
    s.place(0, makeBatch(0, 4, 0, seq), false, /*priority=*/false, 0);
    s.place(0, makeBatch(0, 4, 0, seq), false, /*priority=*/true, 0);
    s.place(0, makeBatch(0, 4, 0, seq), false, /*priority=*/false, 0);
    s.place(0, makeBatch(0, 4, 0, seq), false, /*priority=*/true, 0);
    ASSERT_EQ(s.plannedBatches(), 4u);
    EXPECT_EQ(s.takeReady(0).id, 1u); // first priority plan
    EXPECT_EQ(s.takeReady(0).id, 3u); // second priority plan
    EXPECT_EQ(s.takeReady(0).id, 0u); // then throughput, FIFO
    EXPECT_EQ(s.takeReady(0).id, 2u);
    EXPECT_EQ(s.plannedBatches(), 0u);
}

TEST(Scheduler, StealMovesTailToIdleDevice)
{
    // Two devices saturate, then one frees early with nothing planned:
    // the steal pass must move the loaded device's tail batch over,
    // log it, and leave it launchable on the thief.
    SchedParams params;
    params.maxBacklog = 2;
    Scheduler s(SchedPolicy::Steal, params, 2, 1, 64);
    uint64_t seq = 0;

    // Launch one full batch on each device (est cost 64 q * 64 cyc).
    for (uint32_t d = 0; d < 2; ++d) {
        s.place(0, makeBatch(0, 64, 0, seq), false, false, 0);
        Scheduler::Batch b = s.takeReady(d);
        ASSERT_EQ(b.id, d);
        s.onLaunch(d, b, 0);
    }
    // A third batch backlogs on device 0 (estimated loads tie; lowest
    // index wins).
    EXPECT_EQ(s.place(0, makeBatch(0, 64, 0, seq), false, false, 0),
              0u);

    // Device 1 retires early; device 0 still has ~4000 est cycles in
    // flight plus the planned batch, so the idle device steals it.
    s.onRetire(1, 0, 64, /*complete=*/100, /*elapsed=*/100);
    s.rebalance(/*now=*/100);
    EXPECT_EQ(s.stealsTotal(), 1u);
    EXPECT_EQ(s.steals(1), 1u);
    EXPECT_EQ(s.stealLog(), "s1 c=100 b=2 d0->1\n");
    ASSERT_TRUE(s.hasReady(1));
    EXPECT_FALSE(s.hasReady(0));
    EXPECT_EQ(s.takeReady(1).id, 2u);
}

TEST(Scheduler, StealSkipsPriorityTailUnlessThiefBacklogEmpty)
{
    // A stolen batch is re-queued with the SLO-order insert, so a
    // priority tail would jump *ahead* of the thief's queued
    // throughput plans and delay their estimated starts — the steal
    // pass must leave it in place until the thief's backlog is empty
    // (where the priority insert degenerates to an append).
    SchedParams params;
    params.maxBacklog = 2;
    Scheduler s(SchedPolicy::Steal, params, 2, 1, 64);
    uint64_t seq = 0;

    // Saturate both devices with one full batch each (b0, b1).
    for (uint32_t d = 0; d < 2; ++d) {
        s.place(0, makeBatch(0, 64, 0, seq), false, false, 0);
        Scheduler::Batch b = s.takeReady(d);
        ASSERT_EQ(b.id, d);
        s.onLaunch(d, b, 0);
    }
    // A priority batch backlogs on device 0 (loads tie, lowest index
    // wins), then a small throughput batch lands on device 1.
    EXPECT_EQ(s.place(0, makeBatch(0, 64, 0, seq), false,
                      /*priority=*/true, 0),
              0u);
    EXPECT_EQ(s.place(0, makeBatch(0, 8, 0, seq), false, false, 0), 1u);

    // Device 1 frees early. It qualifies as a thief, but its backlog
    // still holds the throughput plan: the priority tail on device 0
    // must not be stolen over it.
    s.onRetire(1, 0, 64, /*complete=*/600, /*elapsed=*/600);
    s.rebalance(/*now=*/600);
    EXPECT_EQ(s.stealsTotal(), 0u);

    // Once the thief's own plan launches (backlog empty), the
    // priority tail may move: the insert is an append now, so no
    // thief-side batch gets later.
    Scheduler::Batch b = s.takeReady(1);
    ASSERT_EQ(b.id, 3u);
    s.onLaunch(1, b, 600);
    s.rebalance(/*now=*/600);
    EXPECT_EQ(s.stealsTotal(), 1u);
    EXPECT_EQ(s.stealLog(), "s1 c=600 b=2 d0->1\n");
    ASSERT_TRUE(s.hasReady(1));
    EXPECT_EQ(s.takeReady(1).id, 2u);
    EXPECT_FALSE(s.hasReady(0));
}
