/**
 * @file
 * Property/fuzz tests for the service admission queue
 * (service/queue.hh) under randomized enqueue/cancel/deadline
 * interleavings, checked against an independently written shadow model
 * of the dispatch policy. 500+ seeds; per seed we assert:
 *
 *  - no query is dropped or duplicated: every enqueued seq is either
 *    dispatched exactly once or successfully canceled exactly once,
 *  - batches preserve submission order within a tenant,
 *  - with an always-free device, no dispatch happens after the front
 *    query's deadline (rule 1 bounds starvation),
 *  - every selectTenant decision matches the shadow policy (strict
 *    SLO-class priority; within a class EDF with lowest-id ties, then
 *    round-robin full lanes / round-robin drain on per-class cursors),
 *  - a throughput lane never launches while any latency-sensitive lane
 *    has dispatchable work (strict class priority).
 *
 * Two thirds of the seeds mix latency-sensitive and throughput lanes
 * (with a tighter latency-class deadline); the rest keep every lane in
 * the throughput class, pinning the single-class reduction to the
 * original classless policy.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <queue>
#include <vector>

#include "service/queue.hh"
#include "sim/rng.hh"

using namespace tta::service;
using tta::sim::Cycle;
using tta::sim::Rng;

namespace {

/** Independent reimplementation of the lane state + dispatch policy. */
class ShadowQueue
{
  public:
    explicit ShadowQueue(std::vector<SloClass> classes)
        : classes_(std::move(classes)), lanes_(classes_.size())
    {
    }

    void
    enqueue(const QueryTicket &t)
    {
        lanes_[t.tenant].push_back({t.seq, t.deadline, false});
    }

    bool
    cancel(uint32_t tenant, uint64_t seq)
    {
        for (auto &e : lanes_[tenant])
            if (e.seq == seq)
                return e.canceled ? false : (e.canceled = true, true);
        return false;
    }

    uint64_t
    live(uint32_t tenant) const
    {
        uint64_t n = 0;
        for (const auto &e : lanes_[tenant])
            n += !e.canceled;
        return n;
    }

    uint64_t
    liveTotal() const
    {
        uint64_t n = 0;
        for (uint32_t t = 0; t < lanes_.size(); ++t)
            n += live(t);
        return n;
    }

    /** Deadline of the oldest live entry, or kNoCycle. */
    Cycle
    frontDeadline(uint32_t tenant) const
    {
        for (const auto &e : lanes_[tenant])
            if (!e.canceled)
                return e.deadline;
        return kNoCycle;
    }

    Cycle
    earliestDeadline() const
    {
        Cycle best = kNoCycle;
        for (uint32_t t = 0; t < lanes_.size(); ++t)
            best = std::min(best, frontDeadline(t));
        return best;
    }

    int
    selectTenant(Cycle now, uint32_t max_batch, bool drain) const
    {
        // Strict class priority: the first class (by enum order) with
        // any dispatchable work wins outright.
        for (uint32_t c = 0; c < kNumSloClasses; ++c) {
            SloClass cls = static_cast<SloClass>(c);
            // Rule 1: earliest expired deadline in the class, ties to
            // the lowest id.
            int best = -1;
            Cycle best_dl = kNoCycle;
            for (uint32_t t = 0; t < lanes_.size(); ++t) {
                if (classes_[t] != cls)
                    continue;
                Cycle dl = frontDeadline(t);
                if (dl <= now && dl < best_dl) {
                    best = static_cast<int>(t);
                    best_dl = dl;
                }
            }
            if (best >= 0)
                return best;
            // Rules 2+3 share one round-robin scan on the class's own
            // cursor: a lane launches when it is full, or merely
            // non-empty once the source is drained.
            for (uint32_t i = 0; i < lanes_.size(); ++i) {
                uint32_t t = (cursor_[c] + i) % lanes_.size();
                if (classes_[t] != cls)
                    continue;
                if (live(t) >= max_batch || (drain && live(t) > 0))
                    return static_cast<int>(t);
            }
        }
        return -1;
    }

    std::vector<uint64_t>
    popBatch(uint32_t tenant, uint32_t max_batch)
    {
        std::vector<uint64_t> seqs;
        auto &lane = lanes_[tenant];
        while (!lane.empty() && seqs.size() < max_batch) {
            Entry e = lane.front();
            lane.pop_front();
            if (!e.canceled)
                seqs.push_back(e.seq);
        }
        // Trim canceled leftovers so frontDeadline stays O(live).
        while (!lane.empty() && lane.front().canceled)
            lane.pop_front();
        cursor_[static_cast<uint32_t>(classes_[tenant])] =
            (tenant + 1) % static_cast<uint32_t>(lanes_.size());
        return seqs;
    }

  private:
    struct Entry
    {
        uint64_t seq;
        Cycle deadline;
        bool canceled;
    };
    std::vector<SloClass> classes_;
    std::vector<std::deque<Entry>> lanes_;
    uint32_t cursor_[kNumSloClasses] = {0, 0};
};

struct FuzzResult
{
    uint64_t dispatched = 0;
    uint64_t canceled = 0;
};

/** Drive AdmissionQueue + ShadowQueue through one random trace.
 *  (void so ASSERT_* may bail out; totals accumulate into @p res.) */
void
fuzzOne(uint64_t seed, FuzzResult &res)
{
    Rng rng(seed);
    const uint32_t numTenants = 1 + static_cast<uint32_t>(
        rng.nextBounded(4));
    const uint32_t maxBatch = 1 + static_cast<uint32_t>(
        rng.nextBounded(8));
    const Cycle maxWait = 10 + rng.nextBounded(100);
    const uint64_t numArrivals = 50 + rng.nextBounded(400);
    const bool instantService = (seed % 2) == 0;

    // 2/3 of seeds mix SLO classes; the rest stay all-throughput and
    // pin the single-class reduction to the classless policy.
    const bool mixedClasses = seed % 3 != 0;
    std::vector<SloClass> classes(numTenants, SloClass::Throughput);
    if (mixedClasses) {
        for (auto &c : classes)
            c = rng.nextBounded(2) ? SloClass::LatencySensitive
                                   : SloClass::Throughput;
    }
    // Latency-sensitive lanes get a tighter deadline, like the service.
    const Cycle lsWait = 1 + maxWait / 5;
    auto waitOf = [&](uint32_t tenant) {
        return classes[tenant] == SloClass::LatencySensitive ? lsWait
                                                             : maxWait;
    };

    // Pre-generate the arrival trace (nondecreasing cycles) and the
    // cancel requests keyed off each arrival.
    struct Arr
    {
        Cycle cycle;
        uint32_t tenant;
        Cycle cancelAt; //!< kNoCycle = never
    };
    std::vector<Arr> arrivals;
    Cycle t = 0;
    for (uint64_t i = 0; i < numArrivals; ++i) {
        t += rng.nextBounded(20);
        Arr a;
        a.cycle = t;
        a.tenant = static_cast<uint32_t>(rng.nextBounded(numTenants));
        a.cancelAt = rng.nextBounded(10) < 3
                         ? t + rng.nextBounded(2 * maxWait)
                         : kNoCycle;
        arrivals.push_back(a);
    }

    AdmissionQueue q;
    for (SloClass c : classes)
        q.addLane(c);
    ShadowQueue shadow(classes);

    struct Cancel
    {
        Cycle cycle;
        uint64_t seq;
        uint32_t tenant;
        bool operator>(const Cancel &o) const
        {
            return cycle != o.cycle ? cycle > o.cycle : seq > o.seq;
        }
    };
    std::priority_queue<Cancel, std::vector<Cancel>, std::greater<Cancel>>
        cancels;

    std::map<uint64_t, Cycle> deadlineOf;
    std::map<uint64_t, uint32_t> tenantOf;
    std::map<uint64_t, int> timesDispatched;
    std::map<uint64_t, int> timesCanceled;
    std::vector<uint64_t> lastSeq(numTenants, 0);
    std::vector<bool> lastSeqValid(numTenants, false);

    size_t idx = 0;
    uint64_t nextSeq = 0;
    uint64_t dispatched = 0, canceled = 0;
    Cycle now = 0, freeAt = 0;

    for (int guard = 0; guard < 1000000; ++guard) {
        while (idx < arrivals.size() && arrivals[idx].cycle <= now) {
            const Arr &a = arrivals[idx++];
            QueryTicket ticket;
            ticket.seq = nextSeq++;
            ticket.tenant = a.tenant;
            ticket.arrival = a.cycle;
            ticket.deadline = a.cycle + waitOf(a.tenant);
            q.enqueue(ticket);
            shadow.enqueue(ticket);
            deadlineOf[ticket.seq] = ticket.deadline;
            tenantOf[ticket.seq] = a.tenant;
            if (a.cancelAt != kNoCycle)
                cancels.push({a.cancelAt, ticket.seq, a.tenant});
        }
        while (!cancels.empty() && cancels.top().cycle <= now) {
            Cancel c = cancels.top();
            cancels.pop();
            bool ok = q.cancel(c.tenant, c.seq);
            bool shadowOk = shadow.cancel(c.tenant, c.seq);
            EXPECT_EQ(ok, shadowOk) << "seed " << seed << " seq "
                                    << c.seq;
            if (ok) {
                ++timesCanceled[c.seq];
                ++canceled;
            }
        }

        // The two implementations must agree on all observable state.
        EXPECT_EQ(q.pendingTotal(), shadow.liveTotal());
        EXPECT_EQ(q.earliestDeadline(), shadow.earliestDeadline());
        for (uint32_t tn = 0; tn < numTenants; ++tn)
            EXPECT_EQ(q.pending(tn), shadow.live(tn));

        bool drain = idx == arrivals.size();
        bool dispatchedThisIter = false;
        if (now >= freeAt) {
            int sel = q.selectTenant(now, maxBatch, drain);
            EXPECT_EQ(sel, shadow.selectTenant(now, maxBatch, drain))
                << "seed " << seed << " now " << now;
            if (sel >= 0) {
                uint32_t tenant = static_cast<uint32_t>(sel);
                Cycle frontDl = shadow.frontDeadline(tenant);
                std::vector<QueryTicket> batch =
                    q.popBatch(tenant, maxBatch);
                std::vector<uint64_t> expect =
                    shadow.popBatch(tenant, maxBatch);
                ASSERT_EQ(batch.size(), expect.size()) << "seed "
                                                       << seed;
                for (size_t i = 0; i < batch.size(); ++i) {
                    const QueryTicket &ticket = batch[i];
                    EXPECT_EQ(ticket.seq, expect[i]);
                    EXPECT_EQ(ticket.tenant, tenant);
                    EXPECT_EQ(ticket.deadline, deadlineOf[ticket.seq]);
                    // Submission order within a tenant, across batches.
                    if (lastSeqValid[tenant]) {
                        EXPECT_GT(ticket.seq, lastSeq[tenant]);
                    }
                    lastSeq[tenant] = ticket.seq;
                    lastSeqValid[tenant] = true;
                    ++timesDispatched[ticket.seq];
                    ++dispatched;
                    // Rule 1 starvation bound: with the device always
                    // free, nothing launches past its deadline.
                    if (instantService) {
                        EXPECT_LE(now, ticket.deadline)
                            << "seed " << seed << " seq " << ticket.seq;
                    }
                }
                ASSERT_FALSE(batch.empty());
                // If the dispatch was deadline-driven, EDF within the
                // class: no same-class tenant can hold an earlier live
                // expired deadline.
                if (frontDl <= now) {
                    for (uint32_t o = 0; o < numTenants; ++o) {
                        if (o != tenant &&
                            classes[o] == classes[tenant]) {
                            EXPECT_GE(shadow.frontDeadline(o), frontDl);
                        }
                    }
                }
                // Strict class priority: a throughput launch implies
                // no latency-sensitive lane had dispatchable work.
                if (classes[tenant] == SloClass::Throughput) {
                    for (uint32_t o = 0; o < numTenants; ++o) {
                        if (classes[o] != SloClass::LatencySensitive)
                            continue;
                        EXPECT_FALSE(shadow.frontDeadline(o) <= now ||
                                     shadow.live(o) >= maxBatch ||
                                     (drain && shadow.live(o) > 0))
                            << "seed " << seed << ": throughput lane "
                            << tenant
                            << " launched past dispatchable "
                               "latency-sensitive lane "
                            << o;
                    }
                }
                freeAt = instantService ? now
                                        : now + rng.nextBounded(40);
                dispatchedThisIter = true;
            }
        }
        if (dispatchedThisIter)
            continue;

        if (idx == arrivals.size() && cancels.empty() &&
            q.pendingTotal() == 0)
            break;

        Cycle next = kNoCycle;
        if (idx < arrivals.size())
            next = std::min(next, arrivals[idx].cycle);
        if (!cancels.empty())
            next = std::min(next, cancels.top().cycle);
        if (now < freeAt)
            next = std::min(next, freeAt);
        else
            next = std::min(next, q.earliestDeadline());
        ASSERT_NE(next, kNoCycle) << "seed " << seed << " stuck at "
                                  << now;
        ASSERT_GT(next, now) << "seed " << seed;
        now = next;
    }

    // Conservation: every admitted query left exactly once.
    EXPECT_EQ(q.pendingTotal(), 0u) << "seed " << seed;
    for (uint64_t s = 0; s < nextSeq; ++s) {
        int d = timesDispatched.count(s) ? timesDispatched[s] : 0;
        int c = timesCanceled.count(s) ? timesCanceled[s] : 0;
        EXPECT_EQ(d + c, 1) << "seed " << seed << " seq " << s
                            << " dispatched " << d << " canceled " << c;
    }
    EXPECT_EQ(dispatched + canceled, nextSeq);
    res.dispatched += dispatched;
    res.canceled += canceled;
}

} // namespace

TEST(ServiceQueueFuzz, RandomTraces)
{
    FuzzResult totals;
    for (uint64_t seed = 1; seed <= 512; ++seed) {
        fuzzOne(seed, totals);
        if (::testing::Test::HasFailure())
            FAIL() << "first failing seed: " << seed;
    }
    // Sanity: the trace generator exercised both paths heavily.
    EXPECT_GT(totals.dispatched, 50000u);
    EXPECT_GT(totals.canceled, 5000u);
}

TEST(ServiceQueue, CancelSemantics)
{
    AdmissionQueue q(2);
    QueryTicket t;
    t.seq = 7;
    t.tenant = 1;
    t.arrival = 10;
    t.deadline = 60;
    q.enqueue(t);
    EXPECT_EQ(q.pending(1), 1u);
    EXPECT_FALSE(q.cancel(1, 99)); // unknown seq
    EXPECT_TRUE(q.cancel(1, 7));
    EXPECT_FALSE(q.cancel(1, 7)); // double-cancel
    EXPECT_EQ(q.pending(1), 0u);
    EXPECT_EQ(q.earliestDeadline(), kNoCycle);
    // Canceled front never dispatches, even on drain.
    EXPECT_EQ(q.selectTenant(1000, 4, /*drain=*/true), -1);
}

TEST(ServiceQueue, DeadlinePreemptsRoundRobin)
{
    // Tenant 1 has a full batch; tenant 0 holds a single expired query.
    AdmissionQueue q(2);
    QueryTicket a;
    a.seq = 0;
    a.tenant = 0;
    a.arrival = 0;
    a.deadline = 50;
    q.enqueue(a);
    for (uint64_t i = 0; i < 4; ++i) {
        QueryTicket b;
        b.seq = 1 + i;
        b.tenant = 1;
        b.arrival = 5;
        b.deadline = 500;
        q.enqueue(b);
    }
    // Before the deadline, the full lane wins (rule 2)...
    EXPECT_EQ(q.selectTenant(/*now=*/40, /*max_batch=*/4, false), 1);
    // ...after it, the expired front preempts (rule 1).
    auto popped = q.popBatch(1, 4);
    ASSERT_EQ(popped.size(), 4u);
    for (uint64_t i = 0; i < 4; ++i) {
        QueryTicket b;
        b.seq = 5 + i;
        b.tenant = 1;
        b.arrival = 55;
        b.deadline = 555;
        q.enqueue(b);
    }
    EXPECT_EQ(q.selectTenant(/*now=*/60, /*max_batch=*/4, false), 0);
}

TEST(ServiceQueue, LatencyClassPreemptsThroughput)
{
    AdmissionQueue q;
    const uint32_t ls = q.addLane(SloClass::LatencySensitive);
    const uint32_t tp = q.addLane(SloClass::Throughput);
    EXPECT_EQ(q.laneClass(ls), SloClass::LatencySensitive);
    EXPECT_EQ(q.laneClass(tp), SloClass::Throughput);

    // One unexpired latency query; a full throughput batch with an
    // *earlier* deadline.
    QueryTicket a;
    a.seq = 0;
    a.tenant = ls;
    a.arrival = 0;
    a.deadline = 100;
    q.enqueue(a);
    for (uint64_t i = 0; i < 4; ++i) {
        QueryTicket b;
        b.seq = 1 + i;
        b.tenant = tp;
        b.arrival = 0;
        b.deadline = 50;
        q.enqueue(b);
    }

    // Nothing expired, latency lane partial: the latency class has no
    // dispatchable work, so the full throughput lane launches.
    EXPECT_EQ(q.selectTenant(/*now=*/10, /*max_batch=*/4, false),
              static_cast<int>(tp));
    // Drain makes the partial latency lane dispatchable, and strict
    // class priority puts it ahead of the full throughput lane.
    EXPECT_EQ(q.selectTenant(/*now=*/10, /*max_batch=*/4, true),
              static_cast<int>(ls));
    // Both fronts expired: the throughput deadline (50) is earlier,
    // but class priority still launches the latency lane first.
    EXPECT_EQ(q.selectTenant(/*now=*/200, /*max_batch=*/4, false),
              static_cast<int>(ls));
}
