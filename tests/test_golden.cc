/**
 * @file
 * Golden-stat regression snapshots.
 *
 * A handful of fixed configurations re-run on every test invocation and
 * every counter, scalar and the cycle count are diffed against a JSON
 * snapshot committed under tests/golden/. Any counter drift — a changed
 * value, a vanished stat, a new stat — fails with a precise message, so
 * unintended perturbations of the timing model show up immediately.
 *
 * Intentional model changes regenerate the snapshots:
 *
 *     TTA_UPDATE_GOLDEN=1 ./test_golden
 *
 * then commit the rewritten files with the change that caused them.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>

#include "json_lite.hh"
#include "sim/ticked.hh"
#include "workloads/btree_workload.hh"
#include "workloads/nbody_workload.hh"
#include "workloads/rtnn_workload.hh"
#include "workloads/rtree_workload.hh"

#ifndef TTA_GOLDEN_DIR
#error "TTA_GOLDEN_DIR must point at tests/golden"
#endif

using namespace tta;
using namespace ::tta::workloads;

namespace {

sim::Config
modeConfig(sim::AccelMode mode)
{
    sim::Config cfg;
    cfg.accelMode = mode;
    return cfg;
}

struct GoldenCase
{
    const char *name;
    std::function<RunMetrics(sim::StatRegistry &)> run;
};

const GoldenCase kCases[] = {
    {"btree_base",
     [](sim::StatRegistry &stats) {
         BTreeWorkload wl(trees::BTreeKind::BTree, 2000, 256, 7);
         return wl.runBaseline(modeConfig(sim::AccelMode::BaselineGpu),
                               stats);
     }},
    {"btree_tta",
     [](sim::StatRegistry &stats) {
         BTreeWorkload wl(trees::BTreeKind::BTree, 2000, 256, 7);
         return wl.runAccelerated(modeConfig(sim::AccelMode::Tta), stats);
     }},
    {"rtree_ttaplus",
     [](sim::StatRegistry &stats) {
         RTreeWorkload wl(300, 64, 2.0f, 5);
         return wl.runAccelerated(modeConfig(sim::AccelMode::TtaPlus),
                                  stats);
     }},
    {"nbody_tta",
     [](sim::StatRegistry &stats) {
         NBodyWorkload wl(2, 256, 3);
         return wl.runAccelerated(modeConfig(sim::AccelMode::Tta), stats);
     }},
    // Wide SoA node layouts: snapshots pin both the layout serialization
    // (node strides, fetch-line counts) and the rtaFetchWidth timing.
    {"rtnn_wide4",
     [](sim::StatRegistry &stats) {
         RtnnWorkload wl(1500, 48, 1.0f, 9);
         sim::Config cfg = modeConfig(sim::AccelMode::Tta);
         cfg.bvhNodeWidth = 4;
         cfg.rtaFetchWidth = 2;
         return wl.runAccelerated(cfg, stats, true);
     }},
    {"rtree_soa",
     [](sim::StatRegistry &stats) {
         RTreeWorkload wl(300, 64, 2.0f, 5);
         sim::Config cfg = modeConfig(sim::AccelMode::TtaPlus);
         cfg.rtreeSoa = true;
         return wl.runAccelerated(cfg, stats);
     }},
};

std::string
goldenPath(const std::string &name)
{
    return std::string(TTA_GOLDEN_DIR) + "/" + name + ".json";
}

/** Serialize one run's observable state as a stable JSON document. */
std::string
snapshotJson(const char *name, const RunMetrics &m,
             const sim::StatRegistry &stats)
{
    std::ostringstream os;
    os << "{\n  \"name\": \"" << name << "\",\n";
    os << "  \"cycles\": " << m.cycles << ",\n";
    os << "  \"counters\": {";
    bool first = true;
    for (const auto &[key, counter] : stats.counters()) {
        os << (first ? "\n" : ",\n") << "    \"" << key
           << "\": " << counter.value();
        first = false;
    }
    os << "\n  },\n  \"scalars\": {";
    first = true;
    for (const auto &[key, scalar] : stats.scalars()) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", scalar.value());
        os << (first ? "\n" : ",\n") << "    \"" << key << "\": " << buf;
        first = false;
    }
    os << "\n  }\n}\n";
    return os.str();
}

void
diffSection(const char *section, const testjson::Value &golden,
            const testjson::Value &current)
{
    const auto &want = golden.at(section).asObject();
    const auto &got = current.at(section).asObject();
    for (const auto &[key, value] : want) {
        auto it = got.find(key);
        if (it == got.end()) {
            ADD_FAILURE() << section << " stat '" << key
                          << "' disappeared (golden value "
                          << value.asNumber() << ")";
            continue;
        }
        EXPECT_EQ(it->second.asNumber(), value.asNumber())
            << section << " stat '" << key << "' drifted";
    }
    for (const auto &[key, value] : got) {
        EXPECT_TRUE(want.count(key))
            << "new " << section << " stat '" << key << "' (value "
            << value.asNumber()
            << ") not in golden snapshot; regenerate with "
               "TTA_UPDATE_GOLDEN=1";
    }
}

/** Diff one run against the committed snapshot for `gc`. */
void
expectMatchesGolden(const GoldenCase &gc, const RunMetrics &m,
                    const std::string &current)
{
    std::ifstream in(goldenPath(gc.name));
    ASSERT_TRUE(in) << "missing golden snapshot " << goldenPath(gc.name)
                    << "; generate with TTA_UPDATE_GOLDEN=1";
    std::stringstream ss;
    ss << in.rdbuf();

    testjson::Value golden = testjson::parse(ss.str());
    testjson::Value now = testjson::parse(current);
    EXPECT_EQ(static_cast<uint64_t>(golden.at("cycles").asNumber()),
              m.cycles)
        << gc.name << " total cycles drifted";
    diffSection("counters", golden, now);
    diffSection("scalars", golden, now);
}

class GoldenStats : public ::testing::TestWithParam<size_t>
{};

class GoldenStatsThreaded : public ::testing::TestWithParam<size_t>
{};

} // namespace

TEST_P(GoldenStats, MatchesSnapshot)
{
    const GoldenCase &gc = kCases[GetParam()];
    sim::StatRegistry stats;
    RunMetrics m = gc.run(stats);
    std::string current = snapshotJson(gc.name, m, stats);

    if (std::getenv("TTA_UPDATE_GOLDEN")) {
        std::ofstream out(goldenPath(gc.name));
        ASSERT_TRUE(out) << "cannot write " << goldenPath(gc.name);
        out << current;
        GTEST_SKIP() << "regenerated " << goldenPath(gc.name);
    }

    expectMatchesGolden(gc, m, current);
}

INSTANTIATE_TEST_SUITE_P(Configs, GoldenStats,
                         ::testing::Range<size_t>(0, std::size(kCases)),
                         [](const auto &info) {
                             return std::string(kCases[info.param].name);
                         });

// The same snapshots must hold under the threaded kernel: the per-SM
// shards, barrier replay and shadow-registry merge may not move a single
// counter relative to the serial kernels the snapshots were taken under.
TEST_P(GoldenStatsThreaded, MatchesSnapshot)
{
    if (std::getenv("TTA_UPDATE_GOLDEN"))
        GTEST_SKIP() << "snapshots regenerate under the default kernel";
    const GoldenCase &gc = kCases[GetParam()];
    sim::Simulator::setDefaultKernel(sim::Simulator::Kernel::Threaded);
    sim::Simulator::setDefaultSimThreads(4);
    sim::StatRegistry stats;
    RunMetrics m = gc.run(stats);
    sim::Simulator::resetDefaultKernel();
    sim::Simulator::resetDefaultSimThreads();
    std::string current = snapshotJson(gc.name, m, stats);
    expectMatchesGolden(gc, m, current);
}

INSTANTIATE_TEST_SUITE_P(Configs, GoldenStatsThreaded,
                         ::testing::Range<size_t>(0, std::size(kCases)),
                         [](const auto &info) {
                             return std::string(kCases[info.param].name);
                         });
