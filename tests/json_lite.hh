/**
 * @file
 * Minimal recursive-descent JSON parser for tests.
 *
 * Just enough of RFC 8259 to load the artifacts this repository emits
 * (Chrome trace-event documents, experiment-runner records, golden
 * stat snapshots) without adding a third-party dependency. Numbers
 * parse as double; \uXXXX escapes decode as UTF-8 for the BMP.
 */

#ifndef TTA_TESTS_JSON_LITE_HH
#define TTA_TESTS_JSON_LITE_HH

#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace tta::testjson {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Value() = default;
    explicit Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    explicit Value(double d) : kind_(Kind::Number), num_(d) {}
    explicit Value(std::string s) : kind_(Kind::String), str_(std::move(s))
    {}
    explicit Value(Array a)
        : kind_(Kind::Array), arr_(std::make_shared<Array>(std::move(a)))
    {}
    explicit Value(Object o)
        : kind_(Kind::Object), obj_(std::make_shared<Object>(std::move(o)))
    {}

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const { return expect(Kind::Bool), bool_; }
    double asNumber() const { return expect(Kind::Number), num_; }
    const std::string &asString() const
    {
        return expect(Kind::String), str_;
    }
    const Array &asArray() const { return expect(Kind::Array), *arr_; }
    const Object &asObject() const { return expect(Kind::Object), *obj_; }

    /** Object member access; throws when absent or not an object. */
    const Value &
    at(const std::string &key) const
    {
        const Object &o = asObject();
        auto it = o.find(key);
        if (it == o.end())
            throw std::runtime_error("json: missing key '" + key + "'");
        return it->second;
    }

    bool
    has(const std::string &key) const
    {
        return isObject() && obj_->count(key) > 0;
    }

  private:
    void
    expect(Kind k) const
    {
        if (kind_ != k)
            throw std::runtime_error("json: wrong value kind");
    }

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::shared_ptr<Array> arr_;
    std::shared_ptr<Object> obj_;
};

class Parser
{
  public:
    /** Parse a complete document; throws std::runtime_error on errors. */
    static Value
    parse(const std::string &text)
    {
        Parser p(text);
        Value v = p.parseValue();
        p.skipWs();
        if (p.pos_ != text.size())
            p.fail("trailing characters");
        return v;
    }

  private:
    explicit Parser(const std::string &text) : text_(text) {}

    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw std::runtime_error("json: " + why + " at offset " +
                                 std::to_string(pos_));
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    eat(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    tryEat(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    Value
    parseValue()
    {
        skipWs();
        switch (peek()) {
        case '{':
            return parseObject();
        case '[':
            return parseArray();
        case '"':
            return Value(parseString());
        case 't':
            parseLiteral("true");
            return Value(true);
        case 'f':
            parseLiteral("false");
            return Value(false);
        case 'n':
            parseLiteral("null");
            return Value();
        default:
            return parseNumber();
        }
    }

    void
    parseLiteral(const char *lit)
    {
        for (const char *c = lit; *c; ++c)
            eat(*c);
    }

    Value
    parseNumber()
    {
        size_t start = pos_;
        if (tryEat('-')) {
        }
        while (pos_ < text_.size() &&
               ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("invalid number");
        return Value(std::strtod(text_.substr(start, pos_ - start).c_str(),
                                 nullptr));
    }

    std::string
    parseString()
    {
        eat('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("truncated escape");
            char esc = text_[pos_++];
            switch (esc) {
            case '"':
            case '\\':
            case '/':
                out += esc;
                break;
            case 'b':
                out += '\b';
                break;
            case 'f':
                out += '\f';
                break;
            case 'n':
                out += '\n';
                break;
            case 'r':
                out += '\r';
                break;
            case 't':
                out += '\t';
                break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned cp = static_cast<unsigned>(std::strtoul(
                    text_.substr(pos_, 4).c_str(), nullptr, 16));
                pos_ += 4;
                // UTF-8 encode (BMP only; surrogates pass through raw).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xC0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                }
                break;
            }
            default:
                fail("unknown escape");
            }
        }
    }

    Value
    parseArray()
    {
        eat('[');
        Array out;
        skipWs();
        if (tryEat(']'))
            return Value(std::move(out));
        while (true) {
            out.push_back(parseValue());
            skipWs();
            if (tryEat(']'))
                return Value(std::move(out));
            eat(',');
        }
    }

    Value
    parseObject()
    {
        eat('{');
        Object out;
        skipWs();
        if (tryEat('}'))
            return Value(std::move(out));
        while (true) {
            skipWs();
            std::string key = parseString();
            skipWs();
            eat(':');
            out.emplace(std::move(key), parseValue());
            skipWs();
            if (tryEat('}'))
                return Value(std::move(out));
            eat(',');
        }
    }

    const std::string &text_;
    size_t pos_ = 0;
};

inline Value
parse(const std::string &text)
{
    return Parser::parse(text);
}

} // namespace tta::testjson

#endif // TTA_TESTS_JSON_LITE_HH
