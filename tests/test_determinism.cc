/**
 * @file
 * Reproducibility tests: identical seeds must give bit-identical
 * workloads and cycle-identical simulations (the property every bench
 * in this repository relies on); different seeds must actually vary.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/runner.hh"
#include "workloads/btree_workload.hh"
#include "workloads/nbody_workload.hh"
#include "workloads/rtnn_workload.hh"
#include "workloads/rtree_workload.hh"

using namespace tta;
using namespace ::tta::workloads;

namespace {

sim::Config
ttaConfig()
{
    sim::Config cfg;
    cfg.accelMode = sim::AccelMode::Tta;
    return cfg;
}

} // namespace

TEST(Determinism, BTreeAcceleratedCyclesRepeat)
{
    auto run = [](uint64_t seed) {
        BTreeWorkload wl(trees::BTreeKind::BTree, 20000, 2048, seed);
        sim::StatRegistry stats;
        return wl.runAccelerated(ttaConfig(), stats).cycles;
    };
    sim::Cycle a = run(42);
    EXPECT_EQ(a, run(42));
    EXPECT_NE(a, run(43)); // queries differ => traversal differs
}

TEST(Determinism, BTreeBaselineCyclesRepeat)
{
    auto run = [] {
        BTreeWorkload wl(trees::BTreeKind::BPlusTree, 10000, 1024, 9);
        sim::Config cfg;
        sim::StatRegistry stats;
        return wl.runBaseline(cfg, stats).cycles;
    };
    EXPECT_EQ(run(), run());
}

TEST(Determinism, RtnnStatsRepeatExactly)
{
    auto run = [](sim::StatRegistry &stats) {
        RtnnWorkload wl(8192, 512, 1.0f, 21);
        return wl.runAccelerated(ttaConfig(), stats, true);
    };
    sim::StatRegistry s0, s1;
    RunMetrics a = run(s0);
    RunMetrics b = run(s1);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.nodesVisited, b.nodesVisited);
    EXPECT_EQ(s0.counterValue("memsys.reads"),
              s1.counterValue("memsys.reads"));
    EXPECT_EQ(s0.counterValue("rta.warp_buffer_reads"),
              s1.counterValue("rta.warp_buffer_reads"));
    EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
}

TEST(Determinism, RTreeWorkloadRepeats)
{
    auto run = [] {
        RTreeWorkload wl(4000, 512, 2.0f, 33);
        sim::StatRegistry stats;
        return wl.runAccelerated(ttaConfig(), stats).cycles;
    };
    EXPECT_EQ(run(), run());
}

TEST(Determinism, RunnerThreadCountDoesNotChangeStatDumps)
{
    // The same mixed job list through ExperimentRunner with 1 worker and
    // with 4 must produce identical full stat dumps per run — the
    // property that makes `--jobs N` safe for every figure sweep.
    auto mkJobs = [] {
        std::vector<sim::Job> jobs;
        sim::Job btree;
        btree.name = "btree";
        btree.config = ttaConfig();
        btree.seed = 11;
        btree.fn = [](const sim::Config &cfg, sim::StatRegistry &stats,
                      sim::RunRecord &rec) {
            BTreeWorkload wl(trees::BTreeKind::BStarTree, 3000, 256, 11);
            rec.cycles = wl.runAccelerated(cfg, stats).cycles;
        };
        jobs.push_back(std::move(btree));

        sim::Job nbody;
        nbody.name = "nbody";
        nbody.config.accelMode = sim::AccelMode::TtaPlus;
        nbody.seed = 12;
        nbody.fn = [](const sim::Config &cfg, sim::StatRegistry &stats,
                      sim::RunRecord &rec) {
            NBodyWorkload wl(2, 128, 12);
            rec.cycles = wl.runAccelerated(cfg, stats).cycles;
        };
        jobs.push_back(std::move(nbody));

        sim::Job rtnn;
        rtnn.name = "rtnn";
        rtnn.config = ttaConfig();
        rtnn.seed = 13;
        rtnn.fn = [](const sim::Config &cfg, sim::StatRegistry &stats,
                     sim::RunRecord &rec) {
            RtnnWorkload wl(1024, 64, 1.0f, 13);
            rec.cycles = wl.runAccelerated(cfg, stats, true).cycles;
        };
        jobs.push_back(std::move(rtnn));
        return jobs;
    };

    auto serial = sim::ExperimentRunner(1).run(mkJobs());
    auto parallel = sim::ExperimentRunner(4).run(mkJobs());
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_FALSE(serial[i].failed());
        EXPECT_FALSE(parallel[i].failed());
        EXPECT_EQ(serial[i].cycles, parallel[i].cycles);
        std::ostringstream a, b;
        serial[i].stats.dump(a);
        parallel[i].stats.dump(b);
        EXPECT_EQ(a.str(), b.str()) << serial[i].name;
    }
}

TEST(Determinism, ModesDoNotShareHiddenState)
{
    // Running TTA+ between two TTA runs must not perturb the TTA result.
    BTreeWorkload wl(trees::BTreeKind::BTree, 10000, 1024, 5);
    sim::StatRegistry s0;
    sim::Cycle first = wl.runAccelerated(ttaConfig(), s0).cycles;
    sim::Config tp;
    tp.accelMode = sim::AccelMode::TtaPlus;
    sim::StatRegistry s1;
    wl.runAccelerated(tp, s1);
    sim::StatRegistry s2;
    sim::Cycle second = wl.runAccelerated(ttaConfig(), s2).cycles;
    EXPECT_EQ(first, second);
}
