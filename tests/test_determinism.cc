/**
 * @file
 * Reproducibility tests: identical seeds must give bit-identical
 * workloads and cycle-identical simulations (the property every bench
 * in this repository relies on); different seeds must actually vary.
 */

#include <gtest/gtest.h>

#include "workloads/btree_workload.hh"
#include "workloads/rtnn_workload.hh"
#include "workloads/rtree_workload.hh"

using namespace tta;
using namespace ::tta::workloads;

namespace {

sim::Config
ttaConfig()
{
    sim::Config cfg;
    cfg.accelMode = sim::AccelMode::Tta;
    return cfg;
}

} // namespace

TEST(Determinism, BTreeAcceleratedCyclesRepeat)
{
    auto run = [](uint64_t seed) {
        BTreeWorkload wl(trees::BTreeKind::BTree, 20000, 2048, seed);
        sim::StatRegistry stats;
        return wl.runAccelerated(ttaConfig(), stats).cycles;
    };
    sim::Cycle a = run(42);
    EXPECT_EQ(a, run(42));
    EXPECT_NE(a, run(43)); // queries differ => traversal differs
}

TEST(Determinism, BTreeBaselineCyclesRepeat)
{
    auto run = [] {
        BTreeWorkload wl(trees::BTreeKind::BPlusTree, 10000, 1024, 9);
        sim::Config cfg;
        sim::StatRegistry stats;
        return wl.runBaseline(cfg, stats).cycles;
    };
    EXPECT_EQ(run(), run());
}

TEST(Determinism, RtnnStatsRepeatExactly)
{
    auto run = [](sim::StatRegistry &stats) {
        RtnnWorkload wl(8192, 512, 1.0f, 21);
        return wl.runAccelerated(ttaConfig(), stats, true);
    };
    sim::StatRegistry s0, s1;
    RunMetrics a = run(s0);
    RunMetrics b = run(s1);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.nodesVisited, b.nodesVisited);
    EXPECT_EQ(s0.counterValue("memsys.reads"),
              s1.counterValue("memsys.reads"));
    EXPECT_EQ(s0.counterValue("rta.warp_buffer_reads"),
              s1.counterValue("rta.warp_buffer_reads"));
    EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
}

TEST(Determinism, RTreeWorkloadRepeats)
{
    auto run = [] {
        RTreeWorkload wl(4000, 512, 2.0f, 33);
        sim::StatRegistry stats;
        return wl.runAccelerated(ttaConfig(), stats).cycles;
    };
    EXPECT_EQ(run(), run());
}

TEST(Determinism, ModesDoNotShareHiddenState)
{
    // Running TTA+ between two TTA runs must not perturb the TTA result.
    BTreeWorkload wl(trees::BTreeKind::BTree, 10000, 1024, 5);
    sim::StatRegistry s0;
    sim::Cycle first = wl.runAccelerated(ttaConfig(), s0).cycles;
    sim::Config tp;
    tp.accelMode = sim::AccelMode::TtaPlus;
    sim::StatRegistry s1;
    wl.runAccelerated(tp, s1);
    sim::StatRegistry s2;
    sim::Cycle second = wl.runAccelerated(ttaConfig(), s2).cycles;
    EXPECT_EQ(first, second);
}
