/**
 * @file
 * Edge-case and back-pressure tests that don't fit the per-module
 * suites: queue limits, stack nesting depth, partition properties, and
 * serialized-layout details.
 */

#include <gtest/gtest.h>

#include <bit>

#include "gpu/simt_stack.hh"
#include "mem/coalescer.hh"
#include "mem/memsys.hh"
#include "sim/rng.hh"
#include "trees/btree.hh"
#include "trees/octree.hh"

using namespace tta;

TEST(MemSystemEdge, InputQueueBackpressure)
{
    sim::Config cfg;
    sim::StatRegistry stats;
    mem::MemSystem memsys(cfg, stats);
    // Fill SM0's input queue without ticking; canAccept must flip off.
    int accepted = 0;
    while (memsys.canAccept(0) && accepted < 1000) {
        mem::MemRequest req;
        req.addr = 0x1000 + accepted * 128;
        req.smId = 0;
        req.tag = accepted;
        memsys.sendRequest(req);
        ++accepted;
    }
    EXPECT_EQ(accepted, 64); // kL1QueueDepth
    EXPECT_TRUE(memsys.canAccept(1)); // other SMs unaffected
    // Draining restores acceptance and answers everything.
    sim::Cycle clock = 0;
    while (memsys.busy() && clock < 100000)
        memsys.tick(clock++);
    EXPECT_TRUE(memsys.canAccept(0));
    EXPECT_EQ(memsys.responses(0).size(), 64u);
}

TEST(SimtStackEdge, ThreeLevelNesting)
{
    gpu::SimtStack stack;
    stack.start(0, 0xffu);
    stack.branch(0x0fu, 10, 100); // level 1: half take
    EXPECT_EQ(stack.pc(), 10u);
    stack.branch(0x03u, 20, 50); // level 2 within the taken side
    EXPECT_EQ(stack.pc(), 20u);
    EXPECT_EQ(stack.activeMask(), 0x03u);
    stack.branch(0x01u, 30, 40); // level 3
    EXPECT_EQ(stack.activeMask(), 0x01u);
    EXPECT_GE(stack.depth(), 4u);
    // Unwind: every level reconverges to its own point.
    stack.jump(40);
    EXPECT_EQ(stack.activeMask(), 0x02u); // level-3 other side
    stack.jump(40);
    EXPECT_EQ(stack.pc(), 40u);
    EXPECT_EQ(stack.activeMask(), 0x03u); // level 3 merged
    stack.jump(50);
    EXPECT_EQ(stack.activeMask(), 0x0cu); // level-2 other side
    stack.jump(50);
    EXPECT_EQ(stack.activeMask(), 0x0fu);
    stack.jump(100);
    EXPECT_EQ(stack.activeMask(), 0xf0u); // level-1 other side
    stack.jump(100);
    EXPECT_EQ(stack.activeMask(), 0xffu); // fully merged
    EXPECT_EQ(stack.pc(), 100u);
}

TEST(CoalescerProperty, LaneMasksPartitionTheActiveSet)
{
    sim::Rng rng(23);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<mem::Addr> addrs(32);
        uint32_t active = static_cast<uint32_t>(rng.next());
        for (auto &a : addrs)
            a = 0x10000 + rng.nextBounded(1 << 12) * 4; // word-aligned
        auto txns = mem::coalesce(addrs, active, 4, 128);
        uint32_t combined = 0;
        for (const auto &t : txns) {
            // Aligned 4-byte accesses fit one line: no lane repeats.
            EXPECT_EQ(combined & t.laneMask, 0u);
            combined |= t.laneMask;
            EXPECT_EQ(t.lineAddr % 128, 0u);
        }
        EXPECT_EQ(combined, active);
    }
}

TEST(BTreeEdge, SerializedSearchReportsDepthAndTerminal)
{
    std::vector<float> keys;
    for (int i = 1; i <= 2000; ++i)
        keys.push_back(2.0f * i);
    trees::BTree tree(trees::BTreeKind::BPlusTree, keys);
    mem::GlobalMemory gmem(4u << 20);
    uint64_t root = tree.serialize(gmem);
    auto hit = trees::BTree::searchSerialized(gmem, root, 2000.0f);
    EXPECT_TRUE(hit.found);
    auto miss = trees::BTree::searchSerialized(gmem, root, 2001.0f);
    EXPECT_FALSE(miss.found);
    // B+Tree: both walks reach the same depth (leaf level).
    EXPECT_EQ(miss.depth, tree.height());
    EXPECT_NE(miss.terminalNode, 0u);
}

TEST(BarnesHutEdge, TwoDTreeIgnoresZStructure)
{
    sim::Rng rng(29);
    std::vector<trees::BhBody> bodies;
    for (int i = 0; i < 600; ++i) {
        trees::BhBody b;
        b.pos = {rng.uniform(-5, 5), rng.uniform(-5, 5), 0.0f};
        b.mass = 1.0f;
        bodies.push_back(b);
    }
    trees::BarnesHutTree quad(2, bodies, 0.5f);
    // Quadtree inner nodes have at most 4 children.
    for (uint32_t n = 0; n < quad.numNodes(); ++n) {
        auto view = quad.nodeView(n);
        if (!view.leaf) {
            EXPECT_LE(view.children.size(), 4u);
        }
    }
}

TEST(BarnesHutEdge, DuplicatePositionsTerminate)
{
    // Coincident bodies force the depth cutoff; the build must not hang
    // and the self-interaction guard must keep forces finite.
    std::vector<trees::BhBody> bodies(40, trees::BhBody{{1, 1, 1}, 1.0f});
    bodies.push_back({{2, 2, 2}, 1.0f});
    trees::BarnesHutTree tree(3, bodies, 0.5f);
    auto res = tree.referenceForce({1, 1, 1});
    EXPECT_TRUE(std::isfinite(res.accel.x));
    EXPECT_GT(geom::length(res.accel), 0.0f);
}

TEST(HistogramEdge, BucketClampingAndReset)
{
    sim::Histogram h(2.0, 4); // buckets [0,2) [2,4) [4,6) [6,inf)
    h.sample(-5.0);           // clamps to bucket 0
    h.sample(1.0);
    h.sample(7.0);
    h.sample(1e9);
    EXPECT_EQ(h.buckets()[0], 2u);
    EXPECT_EQ(h.buckets()[3], 2u);
    EXPECT_DOUBLE_EQ(h.minValue(), -5.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.buckets()[3], 0u);
}
