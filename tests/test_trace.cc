/**
 * @file
 * Trace subsystem tests: TraceStream ring semantics, category-mask
 * parsing, Chrome trace-event export validity (monotonic timestamps,
 * matched B/E pairs, pid/tid metadata), end-to-end traces from real
 * cycle-level runs, and the zero-cost-when-disabled guarantee.
 *
 * With TTA_TRACE_FILE set, the external-file test validates a trace
 * emitted by a bench driver instead (the CI smoke job uses this to
 * check `bench_* --trace` output with the same validator).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "json_lite.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"
#include "workloads/btree_workload.hh"

using namespace tta;
using testjson::Value;

namespace {

sim::Config
modeConfig(sim::AccelMode mode)
{
    sim::Config cfg;
    cfg.accelMode = mode;
    return cfg;
}

struct TraceSummary
{
    size_t events = 0;   //!< non-metadata events
    size_t spans = 0;    //!< closed B/E pairs
    std::set<std::string> threadNames;
    std::set<std::string> processNames;
};

/**
 * Assert structural validity of a Chrome trace-event document and
 * return what it contained. Checks, per (pid, tid) track:
 *  - timestamps are monotonically non-decreasing,
 *  - every E closes an open B and no B is left open,
 *  - the track is named by thread_name metadata and its pid by
 *    process_name metadata.
 */
TraceSummary
validateTrace(const Value &doc)
{
    TraceSummary out;
    const auto &events = doc.at("traceEvents").asArray();

    using Track = std::pair<int, int>; // (pid, tid)
    std::map<Track, double> lastTs;
    std::map<Track, int> openSpans;
    std::map<Track, std::string> threadNames;
    std::map<int, std::string> processNames;

    for (const Value &ev : events) {
        const std::string &ph = ev.at("ph").asString();
        int pid = static_cast<int>(ev.at("pid").asNumber());
        if (ph == "M") {
            const std::string &what = ev.at("name").asString();
            if (what == "process_name") {
                processNames[pid] =
                    ev.at("args").at("name").asString();
            } else if (what == "thread_name") {
                int tid = static_cast<int>(ev.at("tid").asNumber());
                threadNames[{pid, tid}] =
                    ev.at("args").at("name").asString();
            }
            continue;
        }
        int tid = static_cast<int>(ev.at("tid").asNumber());
        Track track{pid, tid};
        double ts = ev.at("ts").asNumber();
        auto it = lastTs.find(track);
        if (it != lastTs.end()) {
            EXPECT_GE(ts, it->second)
                << "timestamps regress on pid " << pid << " tid " << tid;
        }
        lastTs[track] = ts;

        if (ph == "B") {
            EXPECT_FALSE(ev.at("name").asString().empty());
            ++openSpans[track];
        } else if (ph == "E") {
            EXPECT_GT(openSpans[track], 0)
                << "orphan E on pid " << pid << " tid " << tid;
            if (openSpans[track] > 0) {
                --openSpans[track];
                ++out.spans;
            }
        } else if (ph == "X") {
            EXPECT_GE(ev.at("dur").asNumber(), 0.0);
        } else if (ph == "C") {
            EXPECT_TRUE(ev.at("args").has("value"));
        } else {
            EXPECT_EQ(ph, "i") << "unexpected phase " << ph;
        }
        ++out.events;
    }

    for (const auto &[track, open] : openSpans)
        EXPECT_EQ(open, 0) << "dangling B on pid " << track.first
                           << " tid " << track.second;
    for (const auto &[track, ts] : lastTs) {
        EXPECT_TRUE(threadNames.count(track))
            << "unnamed tid " << track.second;
        EXPECT_TRUE(processNames.count(track.first))
            << "unnamed pid " << track.first;
    }
    for (const auto &[track, tname] : threadNames)
        out.threadNames.insert(tname);
    for (const auto &[pid, pname] : processNames)
        out.processNames.insert(pname);
    return out;
}

} // namespace

// --- Unit-level ------------------------------------------------------------

TEST(TraceStream, RingOverwritesOldestAndCountsDrops)
{
    sim::Tracer tracer(sim::TraceAllCategories, /*ring_capacity=*/8);
    sim::TraceStream *s = tracer.stream("unit", sim::TraceWarp);
    ASSERT_NE(s, nullptr);
    for (sim::Cycle c = 0; c < 20; ++c)
        s->instant(c, "tick");
    EXPECT_EQ(s->size(), 8u);
    EXPECT_EQ(s->dropped(), 12u);
    EXPECT_EQ(tracer.droppedEvents(), 12u);
    auto events = s->snapshot();
    ASSERT_EQ(events.size(), 8u);
    EXPECT_EQ(events.front().ts, 12u); // oldest surviving
    EXPECT_EQ(events.back().ts, 19u);
}

TEST(TraceStream, DedupByNameAndCategoryFilter)
{
    sim::Tracer tracer(sim::TraceWarp | sim::TraceMem);
    sim::TraceStream *a = tracer.stream("c0", sim::TraceWarp);
    sim::TraceStream *b = tracer.stream("c0", sim::TraceWarp);
    EXPECT_EQ(a, b);
    EXPECT_EQ(tracer.numStreams(), 1u);
    // Disabled category: callers get nullptr and skip all emission.
    EXPECT_EQ(tracer.stream("rta0", sim::TraceRta), nullptr);
    EXPECT_TRUE(tracer.wants(sim::TraceMem));
    EXPECT_FALSE(tracer.wants(sim::TraceOp));
}

TEST(TraceMask, ParseAndFormatRoundTrip)
{
    EXPECT_EQ(sim::Tracer::parseMask("all"), sim::TraceAllCategories);
    EXPECT_EQ(sim::Tracer::parseMask("warp"), sim::TraceWarp);
    EXPECT_EQ(sim::Tracer::parseMask("warp,mem"),
              sim::TraceWarp | sim::TraceMem);
    EXPECT_EQ(sim::Tracer::parseMask("0x3"),
              sim::TraceWarp | sim::TraceRta);
    EXPECT_EQ(sim::Tracer::parseMask("9"), 9u);
    EXPECT_THROW(sim::Tracer::parseMask("bogus"), sim::FatalError);
    EXPECT_EQ(sim::Tracer::maskToString(sim::TraceAllCategories), "all");
    for (uint32_t mask = 1; mask < sim::TraceAllCategories; ++mask)
        EXPECT_EQ(sim::Tracer::parseMask(sim::Tracer::maskToString(mask)),
                  mask)
            << "mask " << mask;
}

// --- Export validity -------------------------------------------------------

TEST(TraceExport, SanitizesTornSpansIntoValidJson)
{
    sim::Tracer tracer(sim::TraceAllCategories);
    sim::TraceStream *s = tracer.stream("torn", sim::TraceWarp);
    ASSERT_NE(s, nullptr);
    s->end(5);             // orphan E: must be skipped
    s->begin(10, "outer");
    s->begin(12, "inner");
    s->end(14);
    s->complete(16, 4, "x");
    s->instant(18, "i");
    s->counter(20, "val", 3.5);
    // "outer" is never closed: export must close it at the last ts.

    std::stringstream ss;
    tracer.writeJson(ss);
    Value doc = testjson::parse(ss.str());
    TraceSummary sum = validateTrace(doc);
    EXPECT_EQ(sum.spans, 2u); // inner + repaired outer
    EXPECT_TRUE(sum.threadNames.count("torn"));
    EXPECT_TRUE(sum.processNames.count("sim"));
}

TEST(TraceExport, MultiProcessMergePreservesValidity)
{
    sim::Tracer a(sim::TraceAllCategories);
    sim::Tracer b(sim::TraceAllCategories);
    a.stream("s", sim::TraceWarp)->complete(0, 7, "run_a");
    b.stream("s", sim::TraceWarp)->complete(3, 2, "run_b");

    // The multi-job merge path bench drivers use: one process per run.
    std::stringstream ss;
    ss << "{\"traceEvents\":[";
    bool first = true;
    a.writeEvents(ss, 1, "job_a", first);
    b.writeEvents(ss, 2, "job_b", first);
    ss << "]}";

    Value doc = testjson::parse(ss.str());
    TraceSummary sum = validateTrace(doc);
    EXPECT_EQ(sum.events, 2u);
    EXPECT_TRUE(sum.processNames.count("job_a"));
    EXPECT_TRUE(sum.processNames.count("job_b"));
}

// --- End-to-end ------------------------------------------------------------

namespace {

/** Run a small B-Tree search at `mode` with `tracer` attached. */
sim::Cycle
tracedRun(sim::AccelMode mode, sim::Tracer *tracer)
{
    workloads::BTreeWorkload wl(trees::BTreeKind::BTree, 2000, 256, 7);
    sim::StatRegistry stats;
    stats.setTracer(tracer);
    workloads::RunMetrics m =
        mode == sim::AccelMode::BaselineGpu
            ? wl.runBaseline(modeConfig(mode), stats)
            : wl.runAccelerated(modeConfig(mode), stats);
    stats.setTracer(nullptr);
    return m.cycles;
}

} // namespace

TEST(TraceEndToEnd, CycleLevelRunEmitsValidComponentTracks)
{
    sim::Tracer tracer(sim::TraceAllCategories);
    tracedRun(sim::AccelMode::Tta, &tracer);

    std::stringstream ss;
    tracer.writeJson(ss);
    Value doc = testjson::parse(ss.str());
    TraceSummary sum = validateTrace(doc);
    EXPECT_GT(sum.events, 100u);

    // Tracks map to the machine's component names.
    EXPECT_TRUE(sum.threadNames.count("memsys.l2"));
    EXPECT_TRUE(sum.threadNames.count("rta0"));
    EXPECT_TRUE(sum.threadNames.count("rta0.w0"));
    bool has_warp_track = false, has_dram_track = false;
    for (const auto &name : sum.threadNames) {
        has_warp_track |= name.rfind("sm0.w", 0) == 0;
        has_dram_track |= name.rfind("dram.ch", 0) == 0;
    }
    EXPECT_TRUE(has_warp_track);
    EXPECT_TRUE(has_dram_track);
}

TEST(TraceEndToEnd, CategoryMaskLimitsTracks)
{
    sim::Tracer tracer(sim::TraceMem);
    tracedRun(sim::AccelMode::Tta, &tracer);

    std::stringstream ss;
    tracer.writeJson(ss);
    TraceSummary sum = validateTrace(testjson::parse(ss.str()));
    EXPECT_GT(sum.events, 0u);
    for (const auto &name : sum.threadNames)
        EXPECT_TRUE(name.rfind("memsys", 0) == 0 ||
                    name.rfind("dram", 0) == 0)
            << "unexpected track " << name << " under mem-only mask";
}

TEST(TraceEndToEnd, BaselineGpuRunTracesWarpLifetimes)
{
    sim::Tracer tracer(sim::TraceWarp | sim::TraceMem);
    tracedRun(sim::AccelMode::BaselineGpu, &tracer);

    std::stringstream ss;
    tracer.writeJson(ss);
    TraceSummary sum = validateTrace(testjson::parse(ss.str()));
    EXPECT_GT(sum.spans, 0u); // warp issue->retire spans closed
}

// --- Zero cost when disabled ----------------------------------------------

TEST(TraceZeroCost, TracingDoesNotPerturbSimulatedTime)
{
    sim::Cycle untraced = tracedRun(sim::AccelMode::Tta, nullptr);
    sim::Tracer tracer(sim::TraceAllCategories);
    sim::Cycle traced = tracedRun(sim::AccelMode::Tta, &tracer);
    sim::Tracer masked(0u);
    sim::Cycle masked_cycles = tracedRun(sim::AccelMode::Tta, &masked);

    EXPECT_EQ(untraced, traced);
    EXPECT_EQ(untraced, masked_cycles);
    EXPECT_EQ(masked.numStreams(), 0u); // mask 0 => every stream() null
}

TEST(TraceZeroCost, DisabledPathTimingSmoke)
{
    // Smoke-level guard against accidental work on the disabled path
    // (e.g. formatting event names eagerly). Generous 2x bound: the
    // real invariant is branch-on-null, not microbenchmark parity.
    auto time_run = [](sim::Tracer *tracer) {
        auto start = std::chrono::steady_clock::now();
        tracedRun(sim::AccelMode::Tta, tracer);
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };
    time_run(nullptr); // warm caches
    double off = time_run(nullptr);
    sim::Tracer masked(0u);
    double off_masked = time_run(&masked);
    EXPECT_LT(off_masked, off * 2.0 + 0.05);
}

// --- External file (CI smoke) ----------------------------------------------

TEST(TraceFile, ExternalFileIsValid)
{
    const char *path = std::getenv("TTA_TRACE_FILE");
    if (!path)
        GTEST_SKIP() << "TTA_TRACE_FILE not set";
    std::ifstream in(path);
    ASSERT_TRUE(in) << "cannot open " << path;
    std::stringstream ss;
    ss << in.rdbuf();
    TraceSummary sum = validateTrace(testjson::parse(ss.str()));
    EXPECT_GT(sum.events, 0u);
    EXPECT_FALSE(sum.threadNames.empty());
    std::fprintf(stderr, "validated %zu events on %zu tracks in %s\n",
                 sum.events, sum.threadNames.size(), path);
}
