/**
 * @file
 * Exhaustive ISA semantics tests: every opcode executed on the simulated
 * core against a host-computed expectation, plus scoreboard-hazard,
 * memory-coalescing, divergence-nesting and determinism properties.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "gpu/gpu.hh"
#include "sim/rng.hh"

using namespace tta;
using namespace tta::gpu;

namespace {

/** Run a 2-operand op over per-thread inputs and collect outputs. */
std::vector<uint32_t>
runBinaryOp(Opcode op, const std::vector<uint32_t> &a,
            const std::vector<uint32_t> &b)
{
    sim::Config cfg;
    sim::StatRegistry stats;
    Gpu gpu(cfg, stats);
    uint64_t in_a = gpu.memory().alloc(4 * a.size());
    uint64_t in_b = gpu.memory().alloc(4 * b.size());
    uint64_t out = gpu.memory().alloc(4 * a.size());
    for (size_t i = 0; i < a.size(); ++i) {
        gpu.memory().write<uint32_t>(in_a + 4 * i, a[i]);
        gpu.memory().write<uint32_t>(in_b + 4 * i, b[i]);
    }
    KernelBuilder kb("binop");
    kb.tid(1);
    kb.ishli(2, 1, 2);
    kb.param(3, 0);
    kb.iadd(3, 3, 2);
    kb.load(4, 3);
    kb.param(3, 1);
    kb.iadd(3, 3, 2);
    kb.load(5, 3);
    kb.emit(op, 6, 4, 5);
    kb.param(3, 2);
    kb.iadd(3, 3, 2);
    kb.store(3, 6);
    KernelProgram prog = kb.build();
    gpu.runKernel(prog, a.size(),
                  {static_cast<uint32_t>(in_a), static_cast<uint32_t>(in_b),
                   static_cast<uint32_t>(out)});
    std::vector<uint32_t> result(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        result[i] = gpu.memory().read<uint32_t>(out + 4 * i);
    return result;
}

uint32_t
f2u(float f)
{
    uint32_t u;
    std::memcpy(&u, &f, 4);
    return u;
}

float
u2f(uint32_t u)
{
    float f;
    std::memcpy(&f, &u, 4);
    return f;
}

} // namespace

struct BinCase
{
    Opcode op;
    const char *name;
    uint32_t (*expect)(uint32_t, uint32_t);
};

class BinaryOps : public ::testing::TestWithParam<BinCase>
{};

TEST_P(BinaryOps, MatchesHostSemantics)
{
    sim::Rng rng(101);
    std::vector<uint32_t> a, b;
    for (int i = 0; i < 64; ++i) {
        if (i < 32) {
            a.push_back(static_cast<uint32_t>(rng.next()));
            b.push_back(static_cast<uint32_t>(rng.next() | 1));
        } else {
            a.push_back(f2u(rng.uniform(-100.0f, 100.0f)));
            b.push_back(f2u(rng.uniform(0.5f, 100.0f)));
        }
    }
    auto got = runBinaryOp(GetParam().op, a, b);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(got[i], GetParam().expect(a[i], b[i]))
            << GetParam().name << " lane " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Integer, BinaryOps,
    ::testing::Values(
        BinCase{Opcode::IAdd, "iadd",
                [](uint32_t a, uint32_t b) { return a + b; }},
        BinCase{Opcode::ISub, "isub",
                [](uint32_t a, uint32_t b) { return a - b; }},
        BinCase{Opcode::IMul, "imul",
                [](uint32_t a, uint32_t b) { return a * b; }},
        BinCase{Opcode::IAnd, "iand",
                [](uint32_t a, uint32_t b) { return a & b; }},
        BinCase{Opcode::IOr, "ior",
                [](uint32_t a, uint32_t b) { return a | b; }},
        BinCase{Opcode::IXor, "ixor",
                [](uint32_t a, uint32_t b) { return a ^ b; }},
        BinCase{Opcode::SetEqI, "seteqi",
                [](uint32_t a, uint32_t b) -> uint32_t {
                    return a == b;
                }},
        BinCase{Opcode::SetNeI, "setnei",
                [](uint32_t a, uint32_t b) -> uint32_t {
                    return a != b;
                }},
        BinCase{Opcode::SetLtI, "setlti",
                [](uint32_t a, uint32_t b) -> uint32_t {
                    return static_cast<int32_t>(a) <
                           static_cast<int32_t>(b);
                }},
        BinCase{Opcode::IMin, "imin",
                [](uint32_t a, uint32_t b) -> uint32_t {
                    return static_cast<uint32_t>(
                        std::min(static_cast<int32_t>(a),
                                 static_cast<int32_t>(b)));
                }}));

INSTANTIATE_TEST_SUITE_P(
    Float, BinaryOps,
    ::testing::Values(
        BinCase{Opcode::FAdd, "fadd",
                [](uint32_t a, uint32_t b) {
                    return f2u(u2f(a) + u2f(b));
                }},
        BinCase{Opcode::FSub, "fsub",
                [](uint32_t a, uint32_t b) {
                    return f2u(u2f(a) - u2f(b));
                }},
        BinCase{Opcode::FMul, "fmul",
                [](uint32_t a, uint32_t b) {
                    return f2u(u2f(a) * u2f(b));
                }},
        BinCase{Opcode::FDiv, "fdiv",
                [](uint32_t a, uint32_t b) {
                    return f2u(u2f(a) / u2f(b));
                }},
        BinCase{Opcode::FMin, "fmin",
                [](uint32_t a, uint32_t b) {
                    return f2u(std::fmin(u2f(a), u2f(b)));
                }},
        BinCase{Opcode::FMax, "fmax",
                [](uint32_t a, uint32_t b) {
                    return f2u(std::fmax(u2f(a), u2f(b)));
                }},
        BinCase{Opcode::SetLtF, "setltf",
                [](uint32_t a, uint32_t b) -> uint32_t {
                    return u2f(a) < u2f(b);
                }},
        BinCase{Opcode::SetLeF, "setlef",
                [](uint32_t a, uint32_t b) -> uint32_t {
                    return u2f(a) <= u2f(b);
                }}));

TEST(IsaSemantics, UnaryAndImmediateOps)
{
    sim::Config cfg;
    sim::StatRegistry stats;
    Gpu gpu(cfg, stats);
    uint64_t out = gpu.memory().alloc(4096);
    KernelBuilder b("unary");
    b.tid(1);
    b.iaddi(2, 1, 100);    // tid + 100
    b.imuli(2, 2, 3);      // * 3
    b.ishli(3, 1, 4);      // tid << 4
    b.ishri(3, 3, 2);      // >> 2 (== tid * 4)
    b.inot(4, 1);          // ~tid
    b.cvtif(5, 1);
    b.fmuli(5, 5, -1.5f);
    b.fabs_(6, 5);         // |tid * -1.5|
    b.fneg(7, 6);          // -(that)
    b.iadd(8, 2, 3);
    b.param(9, 0);
    b.ishli(10, 1, 4);
    b.iadd(9, 9, 10);
    b.store(9, 8, 0);
    b.store(9, 4, 4);
    b.store(9, 6, 8);
    b.store(9, 7, 12);
    KernelProgram prog = b.build();
    gpu.runKernel(prog, 48, {static_cast<uint32_t>(out)});
    for (uint32_t t = 0; t < 48; ++t) {
        EXPECT_EQ(gpu.memory().read<uint32_t>(out + 16 * t),
                  (t + 100) * 3 + t * 4);
        EXPECT_EQ(gpu.memory().read<uint32_t>(out + 16 * t + 4), ~t);
        EXPECT_FLOAT_EQ(gpu.memory().read<float>(out + 16 * t + 8),
                        std::fabs(t * -1.5f));
        EXPECT_FLOAT_EQ(gpu.memory().read<float>(out + 16 * t + 12),
                        -std::fabs(t * -1.5f));
    }
}

TEST(IsaSemantics, ScoreboardOrdersDependencyChains)
{
    // A long chain of dependent SFU ops must produce the precise value,
    // proving the scoreboard never lets a consumer read early.
    sim::Config cfg;
    sim::StatRegistry stats;
    Gpu gpu(cfg, stats);
    uint64_t out = gpu.memory().alloc(4096);
    KernelBuilder b("chain");
    b.tid(1);
    b.cvtif(2, 1);
    b.faddi(2, 2, 2.0f);
    for (int i = 0; i < 8; ++i) {
        b.fsqrt(2, 2);
        b.fmuli(2, 2, 3.0f);
    }
    b.param(3, 0);
    b.ishli(4, 1, 2);
    b.iadd(3, 3, 4);
    b.store(3, 2);
    KernelProgram prog = b.build();
    gpu.runKernel(prog, 32, {static_cast<uint32_t>(out)});
    for (uint32_t t = 0; t < 32; ++t) {
        float want = t + 2.0f;
        for (int i = 0; i < 8; ++i)
            want = std::sqrt(want) * 3.0f;
        EXPECT_FLOAT_EQ(gpu.memory().read<float>(out + 4 * t), want);
    }
}

TEST(IsaSemantics, CoalescingVisibleInTransactionCounts)
{
    auto count_txns = [](uint32_t stride) {
        sim::Config cfg;
        sim::StatRegistry stats;
        Gpu gpu(cfg, stats);
        uint64_t buf = gpu.memory().alloc(1 << 20, 128);
        KernelBuilder b("stride");
        b.tid(1);
        b.imuli(2, 1, static_cast<int32_t>(stride));
        b.param(3, 0);
        b.iadd(3, 3, 2);
        b.load(4, 3);
        KernelProgram prog = b.build();
        gpu.runKernel(prog, 32, {static_cast<uint32_t>(buf)});
        return stats.counterValue("core.mem_transactions");
    };
    // One warp: unit-stride words hit one line; 128B stride hits 32.
    EXPECT_EQ(count_txns(4), 1u);
    EXPECT_EQ(count_txns(128), 32u);
}

TEST(IsaSemantics, NestedDivergence)
{
    // Three nested data-dependent branches; every thread must still get
    // its own value.
    sim::Config cfg;
    sim::StatRegistry stats;
    Gpu gpu(cfg, stats);
    uint64_t out = gpu.memory().alloc(4096);
    KernelBuilder b("nest");
    b.tid(1);
    b.movi(9, 0);
    b.movi(2, 1);
    b.iand(3, 1, 2); // bit0
    b.ifThenElse(
        3,
        [&]() {
            b.movi(4, 2);
            b.iand(5, 1, 4); // bit1
            b.ifThen(5, [&]() { b.iaddi(9, 9, 100); });
            b.iaddi(9, 9, 10);
        },
        [&]() {
            b.movi(4, 4);
            b.iand(5, 1, 4); // bit2
            b.ifThenElse(5, [&]() { b.iaddi(9, 9, 1000); },
                         [&]() { b.iaddi(9, 9, 1); });
        });
    b.param(6, 0);
    b.ishli(7, 1, 2);
    b.iadd(6, 6, 7);
    b.store(6, 9);
    KernelProgram prog = b.build();
    gpu.runKernel(prog, 64, {static_cast<uint32_t>(out)});
    for (uint32_t t = 0; t < 64; ++t) {
        uint32_t want;
        if (t & 1)
            want = (t & 2 ? 100 : 0) + 10;
        else
            want = (t & 4) ? 1000 : 1;
        EXPECT_EQ(gpu.memory().read<uint32_t>(out + 4 * t), want)
            << "tid " << t;
    }
}

TEST(IsaSemantics, DeterministicCycleCounts)
{
    auto run_once = [] {
        sim::Config cfg;
        sim::StatRegistry stats;
        Gpu gpu(cfg, stats);
        uint64_t buf = gpu.memory().alloc(1 << 16);
        KernelBuilder b("det");
        b.tid(1);
        b.movi(2, 0);
        b.doWhile([&]() -> Reg {
            b.iaddi(2, 2, 1);
            b.movi(3, 17);
            b.iand(4, 1, 3);
            b.iaddi(4, 4, 1);
            b.setlti(5, 2, 4);
            return 5;
        });
        b.param(6, 0);
        b.ishli(7, 1, 2);
        b.iadd(6, 6, 7);
        b.store(6, 2);
        KernelProgram prog = b.build();
        return gpu.runKernel(prog, 4096, {static_cast<uint32_t>(buf)});
    };
    EXPECT_EQ(run_once(), run_once());
}
