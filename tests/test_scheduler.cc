/**
 * @file
 * Event-driven scheduler tests.
 *
 * The sleep/wake kernel must be observationally identical to the polling
 * kernel (see the contract in sim/ticked.hh). The scripted-component
 * tests pin the scheduler mechanics one rule at a time — same-cycle
 * visibility by registration order, re-arming, the sleep-while-woken
 * race — and the randomized lockstep oracle runs the same seeded network
 * of chattering nodes under both kernels, requiring identical event logs
 * and cycle counts across many seeds. A final workload-level test runs a
 * real simulation under both kernels and diffs the entire stat dump.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/config.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/ticked.hh"
#include "workloads/btree_workload.hh"

using namespace ::tta::sim;
namespace workloads = ::tta::workloads;
namespace trees = ::tta::trees;

namespace {

/** Scripted component: records its tick cycles; behavior injectable. */
class Probe : public TickedComponent
{
  public:
    explicit Probe(std::string name) : TickedComponent(std::move(name)) {}

    void
    tick(Cycle cycle) override
    {
        ticks.push_back(cycle);
        next = kAsleep;
        if (onTick)
            onTick(cycle);
    }
    bool busy() const override { return busyFlag; }
    Cycle nextEventCycle(Cycle) const override { return next; }

    std::function<void(Cycle)> onTick;
    std::vector<Cycle> ticks;
    Cycle next = kAsleep;
    bool busyFlag = false;
};

/** Drain every scheduled event (probes are not busy()-driven). */
void
drain(Simulator &sim)
{
    while (sim.advance(1'000'000)) {
    }
}

} // namespace

TEST(Scheduler, SameCycleWakeAfterProducerLandsSameCycle)
{
    StatRegistry stats;
    Simulator sim(stats);
    sim.setKernel(Simulator::Kernel::EventDriven);
    Probe producer("producer"), consumer("consumer");
    producer.onTick = [&](Cycle c) {
        if (c == 0)
            producer.next = 5;
        if (c == 5)
            consumer.wake(c); // consumer registered after us
    };
    sim.add(&producer); // index 0
    sim.add(&consumer); // index 1: ticks after the producer each cycle
    drain(sim);
    // The polling kernel's in-order scan would have ticked the consumer
    // later in cycle 5 and shown it the producer's update immediately.
    EXPECT_EQ(producer.ticks, (std::vector<Cycle>{0, 5}));
    EXPECT_EQ(consumer.ticks, (std::vector<Cycle>{0, 5}));
}

TEST(Scheduler, SameCycleWakeBeforeProducerLandsNextCycle)
{
    StatRegistry stats;
    Simulator sim(stats);
    sim.setKernel(Simulator::Kernel::EventDriven);
    Probe consumer("consumer"), producer("producer");
    producer.onTick = [&](Cycle c) {
        if (c == 0)
            producer.next = 5;
        if (c == 5)
            consumer.wake(c); // consumer already ticked this cycle
    };
    sim.add(&consumer); // index 0: ticks before the producer each cycle
    sim.add(&producer); // index 1
    drain(sim);
    // Under polling the consumer's cycle-5 tick ran before the producer
    // mutated anything, so it first sees the update in cycle 6.
    EXPECT_EQ(consumer.ticks, (std::vector<Cycle>{0, 6}));
}

TEST(Scheduler, ReArmEarlierKeepsOriginalWakeup)
{
    StatRegistry stats;
    Simulator sim(stats);
    sim.setKernel(Simulator::Kernel::EventDriven);
    Probe probe("probe");
    sim.add(&probe);
    sim.wake(&probe, 100);
    sim.wake(&probe, 10); // pull the tick earlier; 100 must survive
    drain(sim);
    EXPECT_EQ(probe.ticks, (std::vector<Cycle>{0, 10, 100}));
}

TEST(Scheduler, WakeDuringDueTickSticksDespiteSleepReturn)
{
    StatRegistry stats;
    Simulator sim(stats);
    sim.setKernel(Simulator::Kernel::EventDriven);
    Probe waker("waker"), sleeper("sleeper");
    waker.onTick = [&](Cycle c) {
        if (c == 0)
            waker.next = 5;
        if (c == 5)
            sleeper.wake(7); // arrives while the sleeper is due at 5
    };
    sleeper.onTick = [&](Cycle c) {
        if (c == 0)
            sleeper.next = 5; // due the same cycle the wake arrives
    };
    sim.add(&waker);
    sim.add(&sleeper);
    drain(sim);
    // The sleeper's cycle-5 tick returns kAsleep, but the wake for 7
    // that arrived mid-cycle must not be lost with it.
    EXPECT_EQ(sleeper.ticks, (std::vector<Cycle>{0, 5, 7}));
}

TEST(Scheduler, IdleStretchIsSkippedNotTicked)
{
    StatRegistry stats;
    Simulator sim(stats);
    sim.setKernel(Simulator::Kernel::EventDriven);
    Probe probe("probe");
    probe.onTick = [&](Cycle c) {
        if (c == 0)
            probe.next = 10'000;
    };
    sim.add(&probe);
    drain(sim);
    EXPECT_EQ(probe.ticks, (std::vector<Cycle>{0, 10'000}));
    EXPECT_EQ(sim.cyclesTicked(), 2u);
    EXPECT_EQ(sim.cyclesSkipped(), 9'999u);
    EXPECT_GT(sim.skippedFraction(), 0.99);
}

TEST(SchedulerDeathTest, BusyComponentWithNoWakeupPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    StatRegistry stats;
    Simulator sim(stats);
    sim.setKernel(Simulator::Kernel::EventDriven);
    Probe stuck("stuck.unit");
    stuck.busyFlag = true; // claims in-flight work but sleeps forever
    sim.add(&stuck);
    // Rather than silently dropping the component's pending work (a
    // model bug: it broke the wake contract), the run loop must abort
    // and name the culprit.
    EXPECT_DEATH(sim.runToQuiescence(1000),
                 "busy with no scheduled wakeup.*stuck\\.unit");
}

namespace {

/**
 * Lockstep-oracle node: a seeded random reactor. All externally-visible
 * behavior (log lines, RNG draws) happens only when an *event* is
 * processed — a due message or a due self-timer — never merely because
 * tick() ran. That makes the node polling-faithful: the polling kernel
 * ticks it every cycle and the event-driven kernel only on due cycles,
 * and both must produce the identical event log.
 */
class RandomNode : public TickedComponent
{
  public:
    RandomNode(uint32_t idx, uint64_t seed,
               std::vector<std::unique_ptr<RandomNode>> *net,
               std::vector<std::string> *log)
        : TickedComponent("node" + std::to_string(idx)), idx_(idx),
          rng_(seed * 1000003ull + idx), net_(net), log_(log)
    {
        selfNext_ = 1 + idx; // staggered initial self events
    }

    /** A peer (or this node) sends us a message during its tick. */
    void
    deliver(Cycle cycle, uint32_t from)
    {
        // Registration-order visibility, matching the polling kernel's
        // in-order scan: a receiver that ticks later in the cycle than
        // the sender sees the message this cycle, else next cycle.
        Cycle visible = idx_ > from ? cycle : cycle + 1;
        wake(cycle); // the scheduler must resolve to the same rule
        inbox_.push_back({visible, from});
    }

    void
    tick(Cycle cycle) override
    {
        for (size_t i = 0; i < inbox_.size();) {
            if (inbox_[i].visible > cycle) {
                ++i;
                continue;
            }
            uint32_t from = inbox_[i].from;
            inbox_.erase(inbox_.begin() + static_cast<ptrdiff_t>(i));
            event(cycle, "recv" + std::to_string(from));
        }
        if (selfNext_ != kAsleep && selfNext_ <= cycle) {
            selfNext_ = kAsleep;
            event(cycle, "self");
        }
    }

    bool
    busy() const override
    {
        return !inbox_.empty() || selfNext_ != kAsleep;
    }

    Cycle
    nextEventCycle(Cycle cycle) const override
    {
        Cycle next = selfNext_;
        for (const auto &msg : inbox_)
            next = std::min(next, std::max(msg.visible, cycle + 1));
        return next;
    }

  private:
    struct Msg
    {
        Cycle visible;
        uint32_t from;
    };

    void
    event(Cycle cycle, const std::string &what)
    {
        log_->push_back("c" + std::to_string(cycle) + " n" +
                        std::to_string(idx_) + " " + what);
        if (++processed_ >= 40)
            return; // stop generating work so the network quiesces
        uint64_t roll = rng_.nextBounded(100);
        if (roll < 45) {
            auto &peer = *(*net_)[rng_.nextBounded(net_->size())];
            log_->push_back("c" + std::to_string(cycle) + " n" +
                            std::to_string(idx_) + " send" +
                            std::to_string(peer.idx_));
            peer.deliver(cycle, idx_);
        } else if (roll < 75) {
            Cycle at = cycle + 1 + rng_.nextBounded(12);
            if (at < selfNext_)
                selfNext_ = at;
        } // else: go idle until a peer wakes us
    }

    uint32_t idx_;
    Rng rng_;
    std::vector<std::unique_ptr<RandomNode>> *net_;
    std::vector<std::string> *log_;
    std::vector<Msg> inbox_;
    Cycle selfNext_;
    uint32_t processed_ = 0;
};

struct NetworkRun
{
    Cycle cycles;
    uint64_t skipped;
    std::vector<std::string> log;
};

NetworkRun
runNetwork(uint64_t seed, Simulator::Kernel kernel)
{
    StatRegistry stats;
    Simulator sim(stats);
    sim.setKernel(kernel);
    std::vector<std::unique_ptr<RandomNode>> net;
    std::vector<std::string> log;
    for (uint32_t i = 0; i < 6; ++i)
        net.push_back(std::make_unique<RandomNode>(i, seed, &net, &log));
    for (auto &node : net)
        sim.add(node.get());
    Cycle ran = sim.runToQuiescence(500'000);
    return {ran, sim.cyclesSkipped(), std::move(log)};
}

} // namespace

TEST(SchedulerOracle, RandomNetworkLockstepAcrossSeeds)
{
    uint64_t total_skipped = 0;
    for (uint64_t seed = 1; seed <= 60; ++seed) {
        NetworkRun polling = runNetwork(seed, Simulator::Kernel::Polling);
        NetworkRun event = runNetwork(seed, Simulator::Kernel::EventDriven);
        EXPECT_EQ(polling.cycles, event.cycles)
            << "cycle count diverged for seed " << seed;
        ASSERT_EQ(polling.log, event.log)
            << "event sequence diverged for seed " << seed;
        EXPECT_EQ(polling.skipped, 0u);
        total_skipped += event.skipped;
    }
    // The oracle is only meaningful if the event kernel actually slept.
    EXPECT_GT(total_skipped, 0u);
}

namespace {

/** Force the process-wide default kernel for one scope. */
struct DefaultKernelGuard
{
    explicit DefaultKernelGuard(Simulator::Kernel kernel)
    {
        Simulator::setDefaultKernel(kernel);
    }
    ~DefaultKernelGuard() { Simulator::resetDefaultKernel(); }
};

struct WorkloadRun
{
    uint64_t cycles;
    std::string stats;
};

WorkloadRun
runWorkload(Simulator::Kernel kernel, bool accelerated)
{
    DefaultKernelGuard guard(kernel);
    StatRegistry stats;
    workloads::BTreeWorkload wl(trees::BTreeKind::BTree, 1000, 128, 5);
    Config cfg;
    cfg.accelMode = accelerated ? AccelMode::Tta : AccelMode::BaselineGpu;
    workloads::RunMetrics m = accelerated ? wl.runAccelerated(cfg, stats)
                                          : wl.runBaseline(cfg, stats);
    std::ostringstream os;
    stats.dump(os);
    return {m.cycles, os.str()};
}

} // namespace

TEST(SchedulerOracle, WorkloadStatsBitIdenticalToPolling)
{
    for (bool accelerated : {false, true}) {
        WorkloadRun polling =
            runWorkload(Simulator::Kernel::Polling, accelerated);
        WorkloadRun event =
            runWorkload(Simulator::Kernel::EventDriven, accelerated);
        EXPECT_EQ(polling.cycles, event.cycles)
            << (accelerated ? "tta" : "baseline") << " cycles diverged";
        EXPECT_EQ(polling.stats, event.stats)
            << (accelerated ? "tta" : "baseline") << " stat dump diverged";
    }
}
