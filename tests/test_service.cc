/**
 * @file
 * Service-level tests for the traversal-as-a-service layer
 * (service/service.hh):
 *
 *  - determinism: one small multi-tenant service config replayed under
 *    every simulation kernel (event-driven, polling, threaded x2/x4)
 *    and through a parallel ExperimentRunner must reproduce the batch
 *    log, every latency histogram and the whole stat registry
 *    bit-for-bit,
 *  - a golden-stat snapshot of that config (tests/golden/
 *    service_small.json, TTA_UPDATE_GOLDEN=1 regenerates),
 *  - admission behavior against hand-written traces: full-batch
 *    dispatch, max-wait flush, cancels, drain, the no-starvation
 *    bound for a sparse tenant behind a saturating one, and the
 *    tighter latency-sensitive SLO-class deadline,
 *  - the bench workload cache (bench_common.hh): serving a deep copy
 *    of a built workload is bit-identical to building it fresh (which
 *    is what lets the figure benches reuse one host tree per row),
 *    hit/lookup counters, and getShared prototype sharing.
 *
 * Multi-device coverage lives in tests/test_service_multidev.cc.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "json_lite.hh"
#include "service/service.hh"
#include "sim/runner.hh"
#include "sim/ticked.hh"

#include "../bench/bench_common.hh"

#ifndef TTA_GOLDEN_DIR
#error "TTA_GOLDEN_DIR must point at tests/golden"
#endif

using namespace ::tta::service;
namespace sim = ::tta::sim;
namespace testjson = ::tta::testjson;
namespace workloads = ::tta::workloads;
namespace trees = ::tta::trees;

namespace {

sim::Config
serviceConfig()
{
    sim::Config cfg;
    cfg.accelMode = sim::AccelMode::Tta;
    return cfg;
}

/** The fixed small service config shared by the determinism and golden
 *  tests: two tenants, Poisson arrivals, a couple hundred batches. */
constexpr uint64_t kSmallSeed = 5;

ServiceReport
runSmallService(const sim::Config &cfg, sim::StatRegistry &stats)
{
    ServicePolicy policy;
    policy.maxBatch = 64;
    policy.maxWaitCycles = 20000;
    TraversalService svc(cfg, stats, policy);
    svc.addTenant(std::make_unique<BTreeTenant>("btree", 400, 128,
                                                kSmallSeed));
    svc.addTenant(std::make_unique<RadiusTenant>("radius", 512, 32, 1.0f,
                                                 kSmallSeed));

    TrafficConfig tc;
    tc.process = ArrivalProcess::Poisson;
    tc.totalQueries = 1500;
    tc.meanGapCycles = 40.0;
    tc.tenantWeights = {0.85, 0.15};
    TrafficGen gen(tc, svc.numTenants(), kSmallSeed ^ 0xbadc0ffeull);
    return svc.run(gen);
}

/** Bit-identity oracle: batch composition + every latency histogram. */
std::string
oracleString(const ServiceReport &rep)
{
    std::string s = rep.batchLog;
    s += "total:" + rep.latency.dumpString();
    for (const auto &tr : rep.tenants) {
        s += tr.name + ":" + tr.latency.dumpString();
        s += tr.name + ".wait:" + tr.queueWait.dumpString();
    }
    return s;
}

/** Longest single-batch service time, parsed from the batch log. */
sim::Cycle
maxBatchDuration(const ServiceReport &rep)
{
    sim::Cycle worst = 0;
    std::istringstream is(rep.batchLog);
    std::string line;
    while (std::getline(is, line)) {
        unsigned long long tenant, start, done, n;
        if (std::sscanf(line.c_str(),
                        "b%*u t=%llu start=%llu done=%llu n=%llu",
                        &tenant, &start, &done, &n) == 4)
            worst = std::max<sim::Cycle>(worst, done - start);
    }
    return worst;
}

} // namespace

// ---------------------------------------------------------------------
// Determinism across simulation kernels and thread counts.
// ---------------------------------------------------------------------

TEST(ServiceDeterminism, KernelsAndThreadCounts)
{
    sim::StatRegistry refStats;
    ServiceReport ref = runSmallService(serviceConfig(), refStats);
    ASSERT_GT(ref.completed, 0u);
    std::string refOracle = oracleString(ref);
    std::string refDump = refStats.dumpString();

    struct Variant
    {
        const char *name;
        sim::Simulator::Kernel kernel;
        unsigned simThreads;
    };
    const Variant variants[] = {
        {"polling", sim::Simulator::Kernel::Polling, 1},
        {"threaded/2", sim::Simulator::Kernel::Threaded, 2},
        {"threaded/4", sim::Simulator::Kernel::Threaded, 4},
    };
    for (const Variant &v : variants) {
        sim::Simulator::setDefaultKernel(v.kernel);
        sim::Simulator::setDefaultSimThreads(v.simThreads);
        sim::StatRegistry stats;
        ServiceReport rep = runSmallService(serviceConfig(), stats);
        sim::Simulator::resetDefaultKernel();
        sim::Simulator::resetDefaultSimThreads();

        EXPECT_EQ(oracleString(rep), refOracle)
            << v.name << ": batch log / latency histograms diverged";
        EXPECT_EQ(stats.dumpString(), refDump)
            << v.name << ": stat registry diverged";
        EXPECT_EQ(rep.makespan, ref.makespan) << v.name;
    }
}

TEST(ServiceDeterminism, ParallelRunnerJobs)
{
    // Two copies of the same service job through a 2-worker runner must
    // match a serial reference registry byte-for-byte (each job owns a
    // private registry, so --jobs can never perturb service stats).
    sim::StatRegistry refStats;
    runSmallService(serviceConfig(), refStats);
    std::string refDump = refStats.dumpString();

    std::vector<sim::Job> jobs(2);
    for (size_t i = 0; i < jobs.size(); ++i) {
        jobs[i].name = "svc" + std::to_string(i);
        jobs[i].config = serviceConfig();
        jobs[i].fn = [](const sim::Config &cfg, sim::StatRegistry &stats,
                        sim::RunRecord &rec) {
            ServiceReport rep = runSmallService(cfg, stats);
            rec.cycles = rep.makespan;
        };
    }
    sim::ExperimentRunner runner(2);
    std::vector<sim::RunRecord> records = runner.run(jobs);
    for (const auto &rec : records) {
        ASSERT_FALSE(rec.failed()) << rec.error;
        EXPECT_EQ(rec.stats.dumpString(), refDump) << rec.name;
    }
}

// ---------------------------------------------------------------------
// Golden snapshot of the small service config.
// ---------------------------------------------------------------------

namespace {

std::string
goldenPath()
{
    return std::string(TTA_GOLDEN_DIR) + "/service_small.json";
}

std::string
snapshotJson(const ServiceReport &rep, const sim::StatRegistry &stats)
{
    std::ostringstream os;
    os << "{\n  \"name\": \"service_small\",\n";
    os << "  \"cycles\": " << rep.makespan << ",\n";
    os << "  \"counters\": {";
    bool first = true;
    for (const auto &[key, counter] : stats.counters()) {
        os << (first ? "\n" : ",\n") << "    \"" << key
           << "\": " << counter.value();
        first = false;
    }
    os << "\n  },\n  \"scalars\": {";
    first = true;
    for (const auto &[key, scalar] : stats.scalars()) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", scalar.value());
        os << (first ? "\n" : ",\n") << "    \"" << key << "\": " << buf;
        first = false;
    }
    os << "\n  }\n}\n";
    return os.str();
}

void
diffSection(const char *section, const testjson::Value &golden,
            const testjson::Value &current)
{
    const auto &want = golden.at(section).asObject();
    const auto &got = current.at(section).asObject();
    for (const auto &[key, value] : want) {
        auto it = got.find(key);
        if (it == got.end()) {
            ADD_FAILURE() << section << " stat '" << key
                          << "' disappeared (golden value "
                          << value.asNumber() << ")";
            continue;
        }
        EXPECT_EQ(it->second.asNumber(), value.asNumber())
            << section << " stat '" << key << "' drifted";
    }
    for (const auto &[key, value] : got) {
        EXPECT_TRUE(want.count(key))
            << "new " << section << " stat '" << key << "' (value "
            << value.asNumber()
            << ") not in golden snapshot; regenerate with "
               "TTA_UPDATE_GOLDEN=1";
    }
}

} // namespace

TEST(ServiceGolden, MatchesSnapshot)
{
    sim::StatRegistry stats;
    ServiceReport rep = runSmallService(serviceConfig(), stats);
    std::string current = snapshotJson(rep, stats);

    if (std::getenv("TTA_UPDATE_GOLDEN")) {
        std::ofstream out(goldenPath());
        ASSERT_TRUE(out) << "cannot write " << goldenPath();
        out << current;
        GTEST_SKIP() << "regenerated " << goldenPath();
    }

    std::ifstream in(goldenPath());
    ASSERT_TRUE(in) << "missing golden snapshot " << goldenPath()
                    << "; generate with TTA_UPDATE_GOLDEN=1";
    std::stringstream ss;
    ss << in.rdbuf();
    testjson::Value golden = testjson::parse(ss.str());
    testjson::Value now = testjson::parse(current);
    EXPECT_EQ(static_cast<uint64_t>(golden.at("cycles").asNumber()),
              rep.makespan)
        << "service makespan drifted";
    diffSection("counters", golden, now);
    diffSection("scalars", golden, now);
}

// ---------------------------------------------------------------------
// Admission behavior against hand-written traces.
// ---------------------------------------------------------------------

namespace {

/** One-tenant service with tiny batches for trace-level tests. */
struct MiniService
{
    sim::StatRegistry stats;
    TraversalService svc;

    explicit MiniService(const ServicePolicy &policy)
        : svc(serviceConfig(), stats, policy)
    {
        svc.addTenant(
            std::make_unique<BTreeTenant>("btree", 200, 64, 11));
    }
};

} // namespace

TEST(ServiceTrace, FullBatchAndDrain)
{
    ServicePolicy policy;
    policy.maxBatch = 4;
    policy.maxWaitCycles = 1000000; // deadlines never fire
    MiniService ms(policy);

    // 10 arrivals in one burst: two full batches plus a drained
    // partial batch of 2.
    std::vector<Arrival> trace;
    for (uint32_t i = 0; i < 10; ++i)
        trace.push_back({/*cycle=*/5, /*tenant=*/0, /*client=*/i, 0});
    TraceSource src(trace);
    ServiceReport rep = ms.svc.run(src);

    EXPECT_EQ(rep.submitted, 10u);
    EXPECT_EQ(rep.completed, 10u);
    EXPECT_EQ(rep.canceled, 0u);
    EXPECT_EQ(rep.batches, 3u);
    EXPECT_EQ(rep.expiredDispatches, 0u);
    // Batch sizes 4, 4, 2 in submission order.
    std::istringstream is(rep.batchLog);
    std::string line;
    std::vector<unsigned long long> sizes;
    while (std::getline(is, line)) {
        unsigned long long tenant, start, done, n;
        ASSERT_EQ(std::sscanf(line.c_str(),
                              "b%*u t=%llu start=%llu done=%llu n=%llu",
                              &tenant, &start, &done, &n),
                  4)
            << line;
        sizes.push_back(n);
    }
    ASSERT_EQ(sizes.size(), 3u);
    EXPECT_EQ(sizes[0], 4u);
    EXPECT_EQ(sizes[1], 4u);
    EXPECT_EQ(sizes[2], 2u);
}

TEST(ServiceTrace, MaxWaitFlushesPartialBatch)
{
    ServicePolicy policy;
    policy.maxBatch = 64; // never fills
    policy.maxWaitCycles = 500;
    MiniService ms(policy);

    // Two early queries, then a long quiet gap before a final arrival:
    // the early pair must flush at its deadline, not wait for traffic.
    std::vector<Arrival> trace = {
        {10, 0, 0, 0},
        {20, 0, 1, 0},
        {1000000, 0, 2, 0},
    };
    TraceSource src(trace);
    ServiceReport rep = ms.svc.run(src);

    EXPECT_EQ(rep.completed, 3u);
    EXPECT_GE(rep.expiredDispatches, 1u);
    // The early pair's queue wait is capped by the deadline rule.
    EXPECT_LE(rep.tenants[0].queueWait.max(), policy.maxWaitCycles);
}

TEST(ServiceTrace, CancelsNeverDispatch)
{
    ServicePolicy policy;
    policy.maxBatch = 8;
    policy.maxWaitCycles = 5000;
    MiniService ms(policy);

    // Every second query cancels long before its deadline; canceled
    // queries must not be dispatched, the rest must all complete.
    std::vector<Arrival> trace;
    for (uint32_t i = 0; i < 40; ++i) {
        Arrival a;
        a.cycle = 10 + 100ull * i;
        a.tenant = 0;
        a.client = i;
        a.cancelAfter = (i % 2) ? 50 : 0;
        trace.push_back(a);
    }
    TraceSource src(trace);
    ServiceReport rep = ms.svc.run(src);

    EXPECT_EQ(rep.submitted, 40u);
    EXPECT_EQ(rep.completed + rep.canceled, 40u);
    EXPECT_GT(rep.canceled, 0u);
    EXPECT_EQ(rep.tenants[0].canceled, rep.canceled);
}

TEST(ServiceTrace, SparseTenantDoesNotStarve)
{
    // Tenant 0 sends widely spaced bursts of exactly one full batch;
    // tenant 1 sends a lone query right after each burst. Tenant 1's
    // partial lane must flush by the deadline rule — its wait is
    // bounded by maxWait plus one in-flight batch, not by when tenant
    // 0's traffic happens to fill another batch.
    ServicePolicy policy;
    policy.maxBatch = 32;
    policy.maxWaitCycles = 8000;

    sim::StatRegistry stats;
    TraversalService svc(serviceConfig(), stats, policy);
    svc.addTenant(std::make_unique<BTreeTenant>("heavy", 200, 64, 11));
    svc.addTenant(std::make_unique<BTreeTenant>("sparse", 200, 64, 12));

    std::vector<Arrival> trace;
    for (uint32_t burst = 0; burst < 8; ++burst) {
        uint64_t at = 50000ull * burst;
        for (uint32_t i = 0; i < policy.maxBatch; ++i)
            trace.push_back({at, 0, i, 0});
        trace.push_back({at + 100, 1, burst, 0});
    }
    TraceSource src(trace);
    ServiceReport rep = svc.run(src);

    const TenantReport &tr = rep.tenants[1];
    ASSERT_EQ(tr.submitted, 8u);
    EXPECT_EQ(tr.completed, 8u);
    // All but possibly the drained last one flush on their deadline.
    EXPECT_GE(rep.expiredDispatches, tr.batches - 1);
    // Wait bound: the deadline, plus at most one in-flight batch.
    sim::Cycle slack = maxBatchDuration(rep);
    EXPECT_LE(tr.queueWait.max(), policy.maxWaitCycles + slack)
        << "sparse tenant waited past its SLO bound";
}

TEST(ServiceTrace, SizeAwareQuotaPopsPartialLaneWhenDeviceIdle)
{
    // The size-aware quota makes a pricey lane dispatchable below
    // maxBatch, and the partial-pop defer must release it the moment
    // a device would otherwise sit idle — not hold it until its
    // deadline expires or the trace drains.
    ServicePolicy policy;
    policy.maxBatch = 64;
    policy.maxWaitCycles = 400000; // far beyond the idle-driven pop
    policy.sched = SchedPolicy::SizeAware;
    policy.schedParams.minQuota = 1;

    sim::StatRegistry stats;
    TraversalService svc(serviceConfig(), stats, policy);
    svc.addTenant(std::make_unique<BTreeTenant>("cheap", 200, 64, 11));
    svc.addTenant(
        std::make_unique<RadiusTenant>("pricey", 512, 64, 1.0f, 12));

    // 63 pricey queries in one burst — above the lane's quota, below
    // maxBatch — then a long quiet gap before a final cheap arrival.
    std::vector<Arrival> trace;
    for (uint32_t i = 0; i < 63; ++i)
        trace.push_back({10, 1, i, 0});
    trace.push_back({1000000, 0, 0, 0});
    TraceSource src(trace);
    ServiceReport rep = svc.run(src);

    ASSERT_EQ(rep.completed, 64u);
    // The burst pops as one partial batch at the burst cycle (the
    // device is idle), so nothing ever reaches its deadline.
    EXPECT_EQ(rep.tenants[1].batches, 1u);
    EXPECT_EQ(rep.expiredDispatches, 0u);
    EXPECT_EQ(rep.tenants[1].queueWait.max(), 0u)
        << "partial lane was deferred past the idle device";
}

TEST(ServiceTrace, ExpiredDispatchCountedAtLaunchNotPlacement)
{
    // Under non-lld policies a batch can be planned unexpired into a
    // busy device's backlog and cross its front deadline before it
    // launches; expiredDispatches judges expiry at launch time.
    ServicePolicy policy;
    policy.maxBatch = 64;
    policy.maxWaitCycles = 100;
    policy.sched = SchedPolicy::SizeAware;
    MiniService ms(policy);

    std::vector<Arrival> trace;
    for (uint32_t i = 0; i < 64; ++i)
        trace.push_back({0, 0, i, 0});
    for (uint32_t i = 0; i < 64; ++i)
        trace.push_back({1, 0, 64 + i, 0});
    TraceSource src(trace);
    ServiceReport rep = ms.svc.run(src);

    ASSERT_EQ(rep.completed, 128u);
    EXPECT_EQ(rep.batches, 2u);
    // The second full batch is planned at cycle 1 (deadline 101 still
    // live) but only launches when the first batch retires, long past
    // the deadline: it must count as an expired dispatch.
    EXPECT_EQ(rep.expiredDispatches, 1u);
}

TEST(ServiceTrace, LatencyClassFlushesOnTighterDeadline)
{
    // Two lanes that never fill: the latency-sensitive one must flush
    // at its own (much tighter) max-wait, the throughput one at the
    // default — the class deadline, not lane fill, sets the pace.
    ServicePolicy policy;
    policy.maxBatch = 64;
    policy.maxWaitCycles = 50000;
    policy.lsMaxWaitCycles = 500;

    sim::StatRegistry stats;
    TraversalService svc(serviceConfig(), stats, policy);
    svc.addTenant(std::make_unique<BTreeTenant>("fast", 200, 64, 11),
                  SloClass::LatencySensitive);
    svc.addTenant(std::make_unique<BTreeTenant>("bulk", 200, 64, 12));

    std::vector<Arrival> trace = {
        {10, 0, 0, 0},      {10, 1, 0, 0},      {20, 0, 1, 0},
        {20, 1, 1, 0},      {1000000, 0, 2, 0}, {1000000, 1, 2, 0},
    };
    TraceSource src(trace);
    ServiceReport rep = svc.run(src);

    ASSERT_EQ(rep.completed, 6u);
    const TenantReport &fast = rep.tenants[0];
    const TenantReport &bulk = rep.tenants[1];
    EXPECT_EQ(fast.slo, SloClass::LatencySensitive);
    EXPECT_EQ(bulk.slo, SloClass::Throughput);
    // The latency pair flushes at arrival + lsMaxWait exactly (the
    // device is idle when the deadline fires).
    EXPECT_LE(fast.queueWait.max(), policy.lsMaxWaitCycles);
    // The throughput pair keeps the long deadline: it must wait well
    // past the latency class's bound, but never past its own (plus one
    // in-flight batch).
    EXPECT_GT(bulk.queueWait.max(), policy.lsMaxWaitCycles);
    EXPECT_LE(bulk.queueWait.max(),
              policy.maxWaitCycles + maxBatchDuration(rep));
    // Per-class stats landed in the registry.
    EXPECT_EQ(stats.counter("service.class.latency.completed").value(),
              3u);
    EXPECT_EQ(
        stats.counter("service.class.throughput.completed").value(),
        3u);
}

// ---------------------------------------------------------------------
// Workload cache: a served deep copy == a fresh build, bit for bit.
// ---------------------------------------------------------------------

TEST(WorkloadCacheIdentity, BTree)
{
    bench::WorkloadCache cache(true);
    auto build = [] {
        return workloads::BTreeWorkload(trees::BTreeKind::BPlusTree,
                                        1000, 128, 21);
    };

    sim::StatRegistry freshStats;
    workloads::BTreeWorkload fresh = build();
    workloads::RunMetrics freshRun =
        fresh.runAccelerated(serviceConfig(), freshStats);

    // Two cache pulls: both are copies of the same cached prototype.
    for (int pull = 0; pull < 2; ++pull) {
        sim::StatRegistry stats;
        workloads::BTreeWorkload copy =
            cache.get<workloads::BTreeWorkload>("bt", build);
        workloads::RunMetrics run = copy.runAccelerated(serviceConfig(), stats);
        EXPECT_EQ(run.cycles, freshRun.cycles) << "pull " << pull;
        EXPECT_EQ(stats.dumpString(), freshStats.dumpString())
            << "pull " << pull;
    }
}

TEST(WorkloadCacheIdentity, Rtnn)
{
    bench::WorkloadCache cache(true);
    auto build = [] {
        return workloads::RtnnWorkload(800, 64, 1.0f, 22);
    };

    sim::StatRegistry freshStats;
    workloads::RtnnWorkload fresh = build();
    workloads::RunMetrics freshRun =
        fresh.runAccelerated(serviceConfig(), freshStats, true);

    sim::StatRegistry stats;
    workloads::RtnnWorkload copy =
        cache.get<workloads::RtnnWorkload>("rtnn", build);
    workloads::RunMetrics run = copy.runAccelerated(serviceConfig(), stats, true);
    EXPECT_EQ(run.cycles, freshRun.cycles);
    EXPECT_EQ(stats.dumpString(), freshStats.dumpString());
}

TEST(WorkloadCacheIdentity, HitCounterAndSharedPrototypes)
{
    bench::WorkloadCache cache(true);
    auto build = [] {
        return workloads::BTreeWorkload(trees::BTreeKind::BTree, 300,
                                        32, 31);
    };
    EXPECT_EQ(cache.lookups(), 0u);
    cache.get<workloads::BTreeWorkload>("a", build);
    EXPECT_EQ(cache.lookups(), 1u);
    EXPECT_EQ(cache.hits(), 0u);
    cache.get<workloads::BTreeWorkload>("a", build);
    EXPECT_EQ(cache.lookups(), 2u);
    EXPECT_EQ(cache.hits(), 1u);

    // getShared hands every caller the same immutable prototype — the
    // path service tenants use to share one tree across tenants and
    // devices without a deep copy.
    int builds = 0;
    auto buildShared = [&builds] {
        ++builds;
        return BTreeTenantData::build(200, 64, 32);
    };
    auto p1 = cache.getShared<BTreeTenantData>("svc", buildShared);
    auto p2 = cache.getShared<BTreeTenantData>("svc", buildShared);
    EXPECT_EQ(builds, 1);
    EXPECT_EQ(p1.get(), p2.get());
    EXPECT_EQ(cache.lookups(), 4u);
    EXPECT_EQ(cache.hits(), 2u);

    // A disabled cache counts lookups but never hits.
    bench::WorkloadCache off(false);
    off.getShared<BTreeTenantData>("svc", buildShared);
    off.getShared<BTreeTenantData>("svc", buildShared);
    EXPECT_EQ(builds, 3);
    EXPECT_EQ(off.lookups(), 2u);
    EXPECT_EQ(off.hits(), 0u);
}

TEST(WorkloadCacheIdentity, DisabledCacheRebuilds)
{
    // With caching off (the --rebuild-device path) every get() runs the
    // builder; results are still identical because builds are seeded.
    bench::WorkloadCache cache(false);
    int builds = 0;
    auto build = [&builds] {
        ++builds;
        return workloads::BTreeWorkload(trees::BTreeKind::BTree, 500, 64,
                                        23);
    };
    cache.get<workloads::BTreeWorkload>("k", build);
    cache.get<workloads::BTreeWorkload>("k", build);
    EXPECT_EQ(builds, 2);

    bench::WorkloadCache cached(true);
    builds = 0;
    cached.get<workloads::BTreeWorkload>("k", build);
    cached.get<workloads::BTreeWorkload>("k", build);
    EXPECT_EQ(builds, 1);
}
