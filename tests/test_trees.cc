/**
 * @file
 * Tests for the tree substrates: B-Tree variants, BVH, Barnes-Hut tree,
 * point clouds — invariants, serialization round trips, and reference
 * queries.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "geom/intersect.hh"
#include "mem/global_memory.hh"
#include "sim/rng.hh"
#include "trees/btree.hh"
#include "trees/bvh.hh"
#include "trees/octree.hh"
#include "trees/pointcloud.hh"

using namespace tta;
using namespace tta::trees;
using tta::sim::Rng;

namespace {

std::vector<float>
makeKeys(size_t n)
{
    std::vector<float> keys(n);
    for (size_t i = 0; i < n; ++i)
        keys[i] = 2.0f * static_cast<float>(i + 1);
    return keys;
}

} // namespace

// --- B-Tree ------------------------------------------------------------

class BTreeAllKinds : public ::testing::TestWithParam<BTreeKind>
{};

TEST_P(BTreeAllKinds, FindsEveryKeyAndRejectsAbsent)
{
    BTree tree(GetParam(), makeKeys(3000));
    for (size_t i = 1; i <= 3000; i += 37)
        EXPECT_TRUE(tree.search(2.0f * i).found) << "key " << 2 * i;
    for (size_t i = 0; i < 200; ++i)
        EXPECT_FALSE(tree.search(2.0f * i + 1.0f).found);
    EXPECT_FALSE(tree.search(-5.0f).found);
    EXPECT_FALSE(tree.search(1e9f).found);
}

TEST_P(BTreeAllKinds, SerializedSearchMatchesHost)
{
    BTree tree(GetParam(), makeKeys(5000));
    mem::GlobalMemory gmem(8u << 20);
    uint64_t root = tree.serialize(gmem);
    Rng rng(42);
    for (int i = 0; i < 2000; ++i) {
        float q = rng.nextFloat() < 0.5f
            ? 2.0f * (1 + rng.nextBounded(5000))
            : 2.0f * rng.nextBounded(5200) + 1.0f;
        auto host = tree.search(q);
        auto dev = BTree::searchSerialized(gmem, root, q);
        EXPECT_EQ(host.found, dev.found) << "query " << q;
    }
}

TEST_P(BTreeAllKinds, UniformDepthForBPlusOnly)
{
    BTree tree(GetParam(), makeKeys(4000));
    mem::GlobalMemory gmem(8u << 20);
    uint64_t root = tree.serialize(gmem);
    std::set<uint32_t> miss_depths;
    for (int i = 0; i < 500; ++i) {
        // Absent keys always walk to a leaf.
        auto r = BTree::searchSerialized(gmem, root,
                                         2.0f * (i * 7 % 4000) + 1.0f);
        miss_depths.insert(r.depth);
    }
    if (GetParam() == BTreeKind::BPlusTree) {
        // B+Tree: every traversal reaches the same leaf level (this is
        // why the paper sees less control divergence for B+).
        EXPECT_EQ(miss_depths.size(), 1u);
    }
    EXPECT_LE(*miss_depths.rbegin(), tree.height());
}

TEST_P(BTreeAllKinds, TinyTrees)
{
    for (size_t n : {1u, 2u, 8u, 9u, 10u}) {
        BTree tree(GetParam(), makeKeys(n));
        for (size_t i = 1; i <= n; ++i)
            EXPECT_TRUE(tree.search(2.0f * i).found);
        EXPECT_FALSE(tree.search(3.0f).found);
    }
}

INSTANTIATE_TEST_SUITE_P(Kinds, BTreeAllKinds,
                         ::testing::Values(BTreeKind::BTree,
                                           BTreeKind::BStarTree,
                                           BTreeKind::BPlusTree));

TEST(BTree, BStarIsShallower)
{
    // The B* variant packs nodes denser, so it is never deeper than the
    // plain B-Tree at the same key count.
    BTree b(BTreeKind::BTree, makeKeys(100000));
    BTree bstar(BTreeKind::BStarTree, makeKeys(100000));
    EXPECT_LE(bstar.height(), b.height());
    EXPECT_LE(bstar.numNodes(), b.numNodes());
}

// --- BVH ---------------------------------------------------------------

TEST(Bvh, LeavesPartitionPrimitives)
{
    Rng rng(7);
    std::vector<geom::Aabb> boxes;
    for (int i = 0; i < 500; ++i) {
        geom::Vec3 p = {rng.uniform(-10, 10), rng.uniform(-10, 10),
                        rng.uniform(-10, 10)};
        boxes.emplace_back(p, p + geom::Vec3(0.5f, 0.5f, 0.5f));
    }
    Bvh bvh;
    bvh.build(boxes, 3);
    // Every primitive appears exactly once across leaves.
    std::vector<uint32_t> order = bvh.primOrder();
    std::sort(order.begin(), order.end());
    for (uint32_t i = 0; i < 500; ++i)
        EXPECT_EQ(order[i], i);
    // Parent boxes contain their children.
    for (const auto &node : bvh.nodes()) {
        if (node.isLeaf())
            continue;
        const auto &l = bvh.nodes()[node.left].box;
        const auto &r = bvh.nodes()[node.right].box;
        EXPECT_TRUE(node.box.contains(l.lo) && node.box.contains(l.hi));
        EXPECT_TRUE(node.box.contains(r.lo) && node.box.contains(r.hi));
    }
}

TEST(Bvh, TraverseFindsAllIntersectedBoxes)
{
    Rng rng(9);
    std::vector<geom::Aabb> boxes;
    for (int i = 0; i < 300; ++i) {
        geom::Vec3 p = {rng.uniform(-10, 10), rng.uniform(-10, 10),
                        rng.uniform(-10, 10)};
        boxes.emplace_back(p, p + geom::Vec3(rng.uniform(0.1f, 1.0f),
                                             rng.uniform(0.1f, 1.0f),
                                             rng.uniform(0.1f, 1.0f)));
    }
    Bvh bvh;
    bvh.build(boxes, 2);
    for (int trial = 0; trial < 50; ++trial) {
        geom::Ray ray;
        ray.origin = {rng.uniform(-15, 15), rng.uniform(-15, 15), -20};
        ray.dir = geom::normalize({rng.uniform(-0.3f, 0.3f),
                                   rng.uniform(-0.3f, 0.3f), 1.0f});
        std::set<uint32_t> via_bvh;
        geom::Ray r = ray;
        bvh.traverse(r, [&](uint32_t id) { via_bvh.insert(id); });
        // Brute force: every intersected box must be reported.
        for (uint32_t id = 0; id < boxes.size(); ++id) {
            if (geom::rayBox(ray, boxes[id])) {
                EXPECT_TRUE(via_bvh.count(id)) << "missed box " << id;
            }
        }
    }
}

TEST(Bvh, SerializedTraversalMatchesHost)
{
    Rng rng(11);
    std::vector<geom::Aabb> boxes;
    for (int i = 0; i < 200; ++i) {
        geom::Vec3 p = {rng.uniform(-5, 5), rng.uniform(-5, 5),
                        rng.uniform(-5, 5)};
        boxes.emplace_back(p, p + geom::Vec3(0.4f));
    }
    Bvh bvh;
    bvh.build(boxes, 2);
    mem::GlobalMemory gmem(8u << 20);
    SerializedBvh image = bvh.serialize(gmem);

    for (int trial = 0; trial < 40; ++trial) {
        geom::Ray ray;
        ray.origin = {rng.uniform(-8, 8), rng.uniform(-8, 8), -10};
        ray.dir = geom::normalize({rng.uniform(-0.4f, 0.4f),
                                   rng.uniform(-0.4f, 0.4f), 1.0f});
        std::set<uint32_t> host_ids;
        geom::Ray hr = ray;
        bvh.traverse(hr, [&](uint32_t id) { host_ids.insert(id); });

        // Walk the serialized image.
        std::set<uint32_t> dev_ids;
        std::vector<uint32_t> stack{image.root.raw};
        while (!stack.empty()) {
            BvhRef ref{stack.back()};
            stack.pop_back();
            if (ref.isLeaf()) {
                uint32_t count = gmem.read<uint32_t>(ref.addr());
                for (uint32_t i = 0; i < count; ++i)
                    dev_ids.insert(
                        gmem.read<uint32_t>(ref.addr() + 4 + 4 * i));
                continue;
            }
            uint64_t node = ref.addr();
            auto test = [&](uint32_t lo_off, uint32_t hi_off,
                            uint32_t ref_off) {
                geom::Aabb box;
                box.lo = {gmem.read<float>(node + lo_off),
                          gmem.read<float>(node + lo_off + 4),
                          gmem.read<float>(node + lo_off + 8)};
                box.hi = {gmem.read<float>(node + hi_off),
                          gmem.read<float>(node + hi_off + 4),
                          gmem.read<float>(node + hi_off + 8)};
                BvhRef child{gmem.read<uint32_t>(node + ref_off)};
                if (child.valid() && geom::rayBox(ray, box))
                    stack.push_back(child.raw);
            };
            using L = BvhNodeLayout;
            test(L::kOffLoL, L::kOffHiL, L::kOffLeft);
            test(L::kOffLoR, L::kOffHiR, L::kOffRight);
        }
        // The leaf-level visit sets must agree (leaf boxes = prim boxes
        // unions; the host traversal enters leaves the ray's box test
        // accepts).
        for (uint32_t id : dev_ids)
            EXPECT_TRUE(geom::rayBox(ray, boxes[id]).has_value() ||
                        true); // leaf granularity: superset allowed
        for (uint32_t id : host_ids)
            EXPECT_TRUE(dev_ids.count(id)) << "serialized walk missed "
                                           << id;
    }
}

TEST(Bvh, SinglePrimitive)
{
    Bvh bvh;
    bvh.build({geom::Aabb({0, 0, 0}, {1, 1, 1})}, 2);
    EXPECT_EQ(bvh.nodes().size(), 1u);
    mem::GlobalMemory gmem(1u << 20);
    SerializedBvh image = bvh.serialize(gmem);
    EXPECT_TRUE(image.root.isLeaf());
}

// --- Barnes-Hut tree ------------------------------------------------------

TEST(BarnesHut, MassAndComInvariants)
{
    Rng rng(5);
    std::vector<BhBody> bodies;
    float total_mass = 0;
    geom::Vec3 weighted(0.0f);
    for (int i = 0; i < 2000; ++i) {
        BhBody b;
        b.pos = {rng.uniform(-10, 10), rng.uniform(-10, 10),
                 rng.uniform(-10, 10)};
        b.mass = rng.uniform(0.5f, 2.0f);
        total_mass += b.mass;
        weighted += b.pos * b.mass;
        bodies.push_back(b);
    }
    BarnesHutTree tree(3, bodies, 0.5f);
    auto root = tree.nodeView(tree.rootIndex());
    EXPECT_NEAR(root.mass, total_mass, total_mass * 1e-4f);
    geom::Vec3 com = weighted / total_mass;
    EXPECT_NEAR(geom::length(root.com - com), 0.0f, 1e-2f);
    EXPECT_EQ(tree.numBodies(), 2000u);
}

TEST(BarnesHut, ForceMatchesDirectSumForSmallTheta)
{
    // theta -> 0 opens every node: Barnes-Hut equals the direct O(n^2)
    // sum.
    Rng rng(6);
    std::vector<BhBody> bodies;
    for (int i = 0; i < 64; ++i) {
        BhBody b;
        b.pos = {rng.uniform(-5, 5), rng.uniform(-5, 5),
                 rng.uniform(-5, 5)};
        b.mass = rng.uniform(0.5f, 2.0f);
        bodies.push_back(b);
    }
    BarnesHutTree tree(3, bodies, 1e-4f);
    const auto &ordered = tree.orderedBodies();
    for (size_t q = 0; q < ordered.size(); q += 7) {
        geom::Vec3 direct(0.0f);
        for (const auto &b : ordered) {
            geom::Vec3 dr = b.pos - ordered[q].pos;
            float d2 = geom::dot(dr, dr);
            if (d2 == 0.0f)
                continue;
            float inv = 1.0f / std::sqrt(d2 + 0.05f * 0.05f);
            direct += dr * (b.mass * inv * inv * inv);
        }
        auto res = tree.referenceForce(ordered[q].pos);
        EXPECT_NEAR(geom::length(res.accel - direct), 0.0f,
                    1e-3f * (geom::length(direct) + 1.0f));
    }
}

TEST(BarnesHut, LargerThetaApproximatesMore)
{
    Rng rng(8);
    std::vector<BhBody> bodies;
    for (int i = 0; i < 4096; ++i) {
        BhBody b;
        b.pos = {rng.gaussian(), rng.gaussian(), rng.gaussian()};
        bodies.push_back(b);
    }
    BarnesHutTree tight(3, bodies, 0.3f);
    BarnesHutTree loose(3, bodies, 1.0f);
    uint64_t tight_visits = 0, loose_visits = 0;
    for (int q = 0; q < 128; ++q) {
        tight_visits +=
            tight.referenceForce(tight.orderedBodies()[q].pos).nodesVisited;
        loose_visits +=
            loose.referenceForce(loose.orderedBodies()[q].pos).nodesVisited;
    }
    EXPECT_LT(loose_visits, tight_visits);
}

TEST(BarnesHut, SerializationRoundTrip)
{
    Rng rng(10);
    std::vector<BhBody> bodies;
    for (int i = 0; i < 500; ++i) {
        BhBody b;
        b.pos = {rng.uniform(-5, 5), rng.uniform(-5, 5), 0.0f};
        b.mass = 1.0f;
        bodies.push_back(b);
    }
    BarnesHutTree tree(2, std::move(bodies), 0.5f);
    mem::GlobalMemory gmem(8u << 20);
    uint64_t root = tree.serialize(gmem);

    // Walk the serialized tree: summed leaf body counts == n, masses
    // aggregate, children contiguous.
    uint64_t body_total = 0;
    std::vector<uint64_t> stack{root};
    while (!stack.empty()) {
        uint64_t node = stack.back();
        stack.pop_back();
        uint32_t flags = gmem.read<uint32_t>(node + BhNodeLayout::kOffFlags);
        if (flags & BhNodeLayout::kLeafFlag) {
            body_total += (flags >> 16) & 0xff;
            continue;
        }
        uint32_t count = (flags >> 8) & 0xff;
        uint32_t base = gmem.read<uint32_t>(node +
                                            BhNodeLayout::kOffChildBase);
        ASSERT_GT(count, 0u);
        for (uint32_t c = 0; c < count; ++c)
            stack.push_back(base + c * BhNodeLayout::kNodeBytes);
    }
    EXPECT_EQ(body_total, tree.numBodies());
}

// --- Point cloud / radius search ----------------------------------------

TEST(PointCloud, DeterministicAndSized)
{
    auto a = PointCloud::generateLidarLike(10000, 3);
    auto b = PointCloud::generateLidarLike(10000, 3);
    ASSERT_EQ(a.points.size(), 10000u);
    EXPECT_EQ(a.points[1234], b.points[1234]);
    auto c = PointCloud::generateLidarLike(10000, 4);
    EXPECT_FALSE(a.points[1234] == c.points[1234]);
}

TEST(RadiusSearch, MatchesBruteForce)
{
    auto cloud = PointCloud::generateLidarLike(5000, 12);
    RadiusSearchIndex index(cloud, 1.5f);
    Rng rng(13);
    for (int trial = 0; trial < 30; ++trial) {
        geom::Vec3 q = cloud.points[rng.nextBounded(cloud.points.size())];
        auto hits = index.query(q);
        std::set<uint32_t> got(hits.begin(), hits.end());
        std::set<uint32_t> want;
        for (uint32_t i = 0; i < cloud.points.size(); ++i) {
            if (geom::pointWithinRadius(q, cloud.points[i], 1.5f))
                want.insert(i);
        }
        EXPECT_EQ(got, want);
    }
}
