/**
 * @file
 * Differential-oracle tests: the cycle-level machine's answers, captured
 * from simulated memory after each run, are diffed against *independent*
 * reference implementations — brute-force loops and sorted-array
 * searches that share no code with the workloads' own verify paths or
 * the trees they serialize — across randomized trees and query sets.
 *
 * The BVH chain is closed in two links: (a) the host reference
 * (Bvh::traverse / RtScene::closestHit) is diffed against an exhaustive
 * all-primitives loop over many random trees and rays, and (b) a
 * cycle-level ray-tracing run verifies the device against that same
 * reference (RayTracingWorkload panics on any mismatch), so the device
 * is transitively checked against the brute force.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "geom/intersect.hh"
#include "sim/rng.hh"
#include "trees/bvh.hh"
#include "workloads/btree_workload.hh"
#include "workloads/raytracing_workload.hh"
#include "workloads/rtree_workload.hh"

using namespace tta;
using namespace ::tta::workloads;

namespace {

sim::Config
modeConfig(sim::AccelMode mode)
{
    sim::Config cfg;
    cfg.accelMode = mode;
    return cfg;
}

/** Rotate through the accelerated hardware levels per seed. */
sim::AccelMode
pickMode(uint64_t seed)
{
    return (seed & 1) ? sim::AccelMode::Tta : sim::AccelMode::TtaPlus;
}

} // namespace

// --- B-Tree ----------------------------------------------------------------
//
// BTreeWorkload keys are, by contract, the even floats 2, 4, ..., 2*n
// (documented in its constructor), so std::binary_search over that
// sequence is a complete membership oracle that never touches
// trees::BTree.

namespace {

void
checkBTreeSeed(uint64_t seed, sim::AccelMode mode, bool baseline)
{
    size_t n_keys = 200 + seed % 173;
    trees::BTreeKind kind = static_cast<trees::BTreeKind>(seed % 3);
    BTreeWorkload wl(kind, n_keys, 64, seed * 7919 + 11, 0.5);

    sim::StatRegistry stats;
    if (baseline)
        wl.runBaseline(modeConfig(sim::AccelMode::BaselineGpu), stats);
    else
        wl.runAccelerated(modeConfig(mode), stats);

    std::vector<float> oracle_keys(n_keys);
    for (size_t i = 0; i < n_keys; ++i)
        oracle_keys[i] = 2.0f * static_cast<float>(i + 1);

    const auto &queries = wl.queries();
    const auto &device = wl.deviceResults();
    ASSERT_EQ(device.size(), queries.size()) << "seed " << seed;
    for (size_t q = 0; q < queries.size(); ++q) {
        uint32_t expect = std::binary_search(oracle_keys.begin(),
                                             oracle_keys.end(), queries[q])
                              ? 1u
                              : 0u;
        ASSERT_EQ(device[q], expect)
            << "seed " << seed << " query " << q << " key " << queries[q];
    }
}

} // namespace

TEST(OracleBTree, AcceleratedMatchesBinarySearch)
{
    for (uint64_t seed = 0; seed < 40; ++seed)
        checkBTreeSeed(seed, pickMode(seed), /*baseline=*/false);
}

TEST(OracleBTree, BaselineKernelMatchesBinarySearch)
{
    for (uint64_t seed = 100; seed < 110; ++seed)
        checkBTreeSeed(seed, sim::AccelMode::BaselineGpu,
                       /*baseline=*/true);
}

// --- R-Tree ----------------------------------------------------------------
//
// Oracle: a brute-force overlap count over the tree's flat object list
// (RTree::orderedObjects() is the leaf-major copy of the input set; the
// count is order-independent). No node, box or traversal logic shared.

namespace {

uint32_t
bruteForceOverlaps(const std::vector<trees::Rect2D> &objects,
                   const trees::Rect2D &query)
{
    uint32_t count = 0;
    for (const auto &obj : objects)
        count += query.overlaps(obj) ? 1u : 0u;
    return count;
}

void
checkRTreeSeed(uint64_t seed, sim::AccelMode mode, bool baseline)
{
    size_t n_objects = 150 + seed % 211;
    float extent = 1.0f + 0.25f * static_cast<float>(seed % 13);
    RTreeWorkload wl(n_objects, 32, extent, seed * 2654435761ull + 3);

    sim::StatRegistry stats;
    if (baseline)
        wl.runBaseline(modeConfig(sim::AccelMode::BaselineGpu), stats);
    else
        wl.runAccelerated(modeConfig(mode), stats);

    const auto &objects = wl.tree().orderedObjects();
    const auto &queries = wl.queries();
    const auto &device = wl.deviceResults();
    ASSERT_EQ(device.size(), queries.size()) << "seed " << seed;
    for (size_t q = 0; q < queries.size(); ++q) {
        ASSERT_EQ(device[q], bruteForceOverlaps(objects, queries[q]))
            << "seed " << seed << " query " << q;
    }
}

} // namespace

TEST(OracleRTree, AcceleratedMatchesBruteForceCount)
{
    for (uint64_t seed = 0; seed < 30; ++seed)
        checkRTreeSeed(seed, pickMode(seed), /*baseline=*/false);
}

TEST(OracleRTree, BaselineKernelMatchesBruteForceCount)
{
    for (uint64_t seed = 100; seed < 105; ++seed)
        checkRTreeSeed(seed, sim::AccelMode::BaselineGpu,
                       /*baseline=*/true);
}

// --- BVH closest-hit -------------------------------------------------------

namespace {

struct SoupHit
{
    bool hit = false;
    float t = 0.0f;
    uint32_t prim = UINT32_MAX;
};

/** Closest hit over every triangle, no acceleration structure. */
SoupHit
bruteForceClosest(const std::vector<Triangle> &tris, const geom::Ray &ray)
{
    SoupHit best;
    geom::Ray r = ray;
    for (uint32_t i = 0; i < tris.size(); ++i) {
        auto h = geom::rayTriangle(r, tris[i].v0, tris[i].v1, tris[i].v2);
        if (h && h->t < r.tmax) {
            best = {true, h->t, i};
            r.tmax = h->t;
        }
    }
    return best;
}

/** Closest hit through the BVH, near-child-first with tmax pruning. */
SoupHit
bvhClosest(const trees::Bvh &bvh, const std::vector<Triangle> &tris,
           const geom::Ray &ray)
{
    SoupHit best;
    geom::Ray r = ray;
    bvh.traverse(r, [&](uint32_t id) {
        auto h = geom::rayTriangle(r, tris[id].v0, tris[id].v1,
                                   tris[id].v2);
        if (h && h->t < r.tmax) {
            best = {true, h->t, id};
            r.tmax = h->t;
        }
    });
    return best;
}

} // namespace

TEST(OracleBvh, TraversalMatchesBruteForceClosestHit)
{
    for (uint64_t seed = 0; seed < 100; ++seed) {
        sim::Rng rng(seed * 6364136223846793005ull + 1442695040888963407ull);
        size_t n_tris = 8 + rng.nextBounded(56);
        std::vector<Triangle> tris(n_tris);
        std::vector<geom::Aabb> boxes(n_tris);
        for (size_t i = 0; i < n_tris; ++i) {
            geom::Vec3 base{rng.uniform(-10.0f, 10.0f),
                            rng.uniform(-10.0f, 10.0f),
                            rng.uniform(-10.0f, 10.0f)};
            auto jitter = [&]() {
                return geom::Vec3{rng.uniform(-1.5f, 1.5f),
                                  rng.uniform(-1.5f, 1.5f),
                                  rng.uniform(-1.5f, 1.5f)};
            };
            tris[i] = {base, base + jitter(), base + jitter()};
            boxes[i].extend(tris[i].v0);
            boxes[i].extend(tris[i].v1);
            boxes[i].extend(tris[i].v2);
        }
        trees::Bvh bvh;
        bvh.build(boxes, 1 + rng.nextBounded(4));

        for (int q = 0; q < 20; ++q) {
            geom::Ray ray;
            ray.origin = {rng.uniform(-14.0f, 14.0f),
                          rng.uniform(-14.0f, 14.0f),
                          rng.uniform(-14.0f, 14.0f)};
            geom::Vec3 target{rng.uniform(-10.0f, 10.0f),
                              rng.uniform(-10.0f, 10.0f),
                              rng.uniform(-10.0f, 10.0f)};
            ray.dir = normalize(target - ray.origin);

            SoupHit brute = bruteForceClosest(tris, ray);
            SoupHit tree = bvhClosest(bvh, tris, ray);
            ASSERT_EQ(tree.hit, brute.hit) << "seed " << seed;
            if (brute.hit) {
                ASSERT_EQ(tree.prim, brute.prim) << "seed " << seed;
                ASSERT_FLOAT_EQ(tree.t, brute.t) << "seed " << seed;
            }
        }
    }
}

// The scene reference intersector — the oracle every cycle-level RT run
// is verified against — must itself match an exhaustive loop over the
// scene's primitives (instances unrolled, alpha mask applied, spheres
// included).
TEST(OracleBvh, SceneReferenceMatchesBruteForce)
{
    const SceneKind kinds[] = {SceneKind::CornellPt, SceneKind::SponzaAo,
                               SceneKind::ShipSh,    SceneKind::TeapotRf,
                               SceneKind::WkndPt,    SceneKind::MaskAm};
    for (SceneKind kind : kinds) {
        RtScene scene(kind, 3);
        const SceneGeometry &g = scene.geometry();
        sim::Rng rng(static_cast<uint64_t>(kind) * 977 + 5);

        auto brute = [&](const geom::Ray &ray) -> RtHit {
            RtHit best;
            geom::Ray r = ray;
            if (g.isSphereScene()) {
                for (uint32_t i = 0; i < g.spheres.size(); ++i) {
                    auto t = geom::raySphere(r, g.spheres[i].first,
                                             g.spheres[i].second);
                    if (t && *t < r.tmax) {
                        best = {true, *t, i, 0};
                        r.tmax = *t;
                    }
                }
                return best;
            }
            auto mesh_loop = [&](uint32_t mesh_id, geom::Ray &mr,
                                 uint32_t inst) {
                const auto &m = g.meshes[mesh_id];
                for (uint32_t i = 0; i < m.triangles.size(); ++i) {
                    auto h = geom::rayTriangle(mr, m.triangles[i].v0,
                                               m.triangles[i].v1,
                                               m.triangles[i].v2);
                    if (!h)
                        continue;
                    if (m.alpha[i] && !RtScene::alphaPass(mesh_id, i))
                        continue;
                    best = {true, h->t, i, inst};
                    mr.tmax = h->t;
                }
            };
            if (!g.twoLevel()) {
                mesh_loop(0, r, 0);
                return best;
            }
            for (size_t i = 0; i < g.instances.size(); ++i) {
                const auto &inst = g.instances[i];
                geom::Ray obj;
                obj.origin = trees::transformPoint(inst.worldToObject,
                                                   r.origin);
                obj.dir = trees::transformDir(inst.worldToObject, r.dir);
                obj.tmin = r.tmin;
                obj.tmax = r.tmax;
                mesh_loop(inst.mesh, obj, static_cast<uint32_t>(i));
                r.tmax = obj.tmax;
            }
            return best;
        };

        for (int q = 0; q < 50; ++q) {
            geom::Ray ray;
            ray.origin = g.cameraPos +
                         geom::Vec3{rng.uniform(-0.5f, 0.5f),
                                    rng.uniform(-0.5f, 0.5f),
                                    rng.uniform(-0.5f, 0.5f)};
            geom::Vec3 target =
                g.cameraTarget + geom::Vec3{rng.uniform(-3.0f, 3.0f),
                                            rng.uniform(-3.0f, 3.0f),
                                            rng.uniform(-3.0f, 3.0f)};
            ray.dir = normalize(target - ray.origin);

            RtHit ref = scene.closestHit(ray);
            RtHit exhaustive = brute(ray);
            ASSERT_EQ(ref.hit, exhaustive.hit)
                << sceneName(kind) << " ray " << q;
            if (ref.hit) {
                ASSERT_EQ(ref.prim, exhaustive.prim)
                    << sceneName(kind) << " ray " << q;
                ASSERT_EQ(ref.instance, exhaustive.instance)
                    << sceneName(kind) << " ray " << q;
                ASSERT_FLOAT_EQ(ref.t, exhaustive.t)
                    << sceneName(kind) << " ray " << q;
            }
        }
    }
}

// Closes the chain: the cycle-level device is verified ray-by-ray
// against RtScene::closestHit inside runAccelerated (panic on any
// mismatch), and closestHit matches the brute force above.
TEST(OracleBvh, CycleLevelDeviceMatchesReference)
{
    RayTracingWorkload wl(SceneKind::CornellPt, 16, 16, 3);
    sim::StatRegistry stats;
    RunMetrics m =
        wl.runAccelerated(modeConfig(sim::AccelMode::TtaPlus), stats);
    EXPECT_GT(m.cycles, 0u);
    EXPECT_GT(m.nodesVisited, 0u);
}
