/**
 * @file
 * Differential-oracle tests: the cycle-level machine's answers, captured
 * from simulated memory after each run, are diffed against *independent*
 * reference implementations — brute-force loops and sorted-array
 * searches that share no code with the workloads' own verify paths or
 * the trees they serialize — across randomized trees and query sets.
 *
 * The BVH chain is closed in two links: (a) the host reference
 * (Bvh::traverse / RtScene::closestHit) is diffed against an exhaustive
 * all-primitives loop over many random trees and rays, and (b) a
 * cycle-level ray-tracing run verifies the device against that same
 * reference (RayTracingWorkload panics on any mismatch), so the device
 * is transitively checked against the brute force.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <optional>
#include <vector>

#include "geom/intersect.hh"
#include "sim/rng.hh"
#include "trees/bvh.hh"
#include "workloads/btree_workload.hh"
#include "workloads/raytracing_workload.hh"
#include "workloads/rtnn_workload.hh"
#include "workloads/rtree_workload.hh"

using namespace tta;
using namespace ::tta::workloads;

namespace {

sim::Config
modeConfig(sim::AccelMode mode)
{
    sim::Config cfg;
    cfg.accelMode = mode;
    return cfg;
}

/** Rotate through the accelerated hardware levels per seed. */
sim::AccelMode
pickMode(uint64_t seed)
{
    return (seed & 1) ? sim::AccelMode::Tta : sim::AccelMode::TtaPlus;
}

} // namespace

// --- B-Tree ----------------------------------------------------------------
//
// BTreeWorkload keys are, by contract, the even floats 2, 4, ..., 2*n
// (documented in its constructor), so std::binary_search over that
// sequence is a complete membership oracle that never touches
// trees::BTree.

namespace {

void
checkBTreeSeed(uint64_t seed, sim::AccelMode mode, bool baseline)
{
    size_t n_keys = 200 + seed % 173;
    trees::BTreeKind kind = static_cast<trees::BTreeKind>(seed % 3);
    BTreeWorkload wl(kind, n_keys, 64, seed * 7919 + 11, 0.5);

    sim::StatRegistry stats;
    if (baseline)
        wl.runBaseline(modeConfig(sim::AccelMode::BaselineGpu), stats);
    else
        wl.runAccelerated(modeConfig(mode), stats);

    std::vector<float> oracle_keys(n_keys);
    for (size_t i = 0; i < n_keys; ++i)
        oracle_keys[i] = 2.0f * static_cast<float>(i + 1);

    const auto &queries = wl.queries();
    const auto &device = wl.deviceResults();
    ASSERT_EQ(device.size(), queries.size()) << "seed " << seed;
    for (size_t q = 0; q < queries.size(); ++q) {
        uint32_t expect = std::binary_search(oracle_keys.begin(),
                                             oracle_keys.end(), queries[q])
                              ? 1u
                              : 0u;
        ASSERT_EQ(device[q], expect)
            << "seed " << seed << " query " << q << " key " << queries[q];
    }
}

} // namespace

TEST(OracleBTree, AcceleratedMatchesBinarySearch)
{
    for (uint64_t seed = 0; seed < 40; ++seed)
        checkBTreeSeed(seed, pickMode(seed), /*baseline=*/false);
}

TEST(OracleBTree, BaselineKernelMatchesBinarySearch)
{
    for (uint64_t seed = 100; seed < 110; ++seed)
        checkBTreeSeed(seed, sim::AccelMode::BaselineGpu,
                       /*baseline=*/true);
}

// --- R-Tree ----------------------------------------------------------------
//
// Oracle: a brute-force overlap count over the tree's flat object list
// (RTree::orderedObjects() is the leaf-major copy of the input set; the
// count is order-independent). No node, box or traversal logic shared.

namespace {

uint32_t
bruteForceOverlaps(const std::vector<trees::Rect2D> &objects,
                   const trees::Rect2D &query)
{
    // Batched over 8-lane SoA blocks; each lane runs the same compare
    // chain as Rect2D::overlaps (test_geom proves the batch kernel
    // bit-equal to the scalar predicate), so the oracle's answer is
    // unchanged while large object sets scan at SIMD speed.
    uint32_t count = 0;
    size_t i = 0;
    for (; i + 8 <= objects.size(); i += 8) {
        geom::WideRects block;
        for (int l = 0; l < 8; ++l) {
            block.x0[l] = objects[i + l].x0;
            block.y0[l] = objects[i + l].y0;
            block.x1[l] = objects[i + l].x1;
            block.y1[l] = objects[i + l].y1;
        }
        count += std::popcount(geom::rectOverlapBatch(
            query.x0, query.y0, query.x1, query.y1, block, 8));
    }
    for (; i < objects.size(); ++i)
        count += query.overlaps(objects[i]) ? 1u : 0u;
    return count;
}

void
checkRTreeSeed(uint64_t seed, sim::AccelMode mode, bool baseline,
               bool soa = false)
{
    size_t n_objects = 150 + seed % 211;
    float extent = 1.0f + 0.25f * static_cast<float>(seed % 13);
    RTreeWorkload wl(n_objects, 32, extent, seed * 2654435761ull + 3);

    sim::StatRegistry stats;
    if (baseline) {
        wl.runBaseline(modeConfig(sim::AccelMode::BaselineGpu), stats);
    } else {
        sim::Config cfg = modeConfig(mode);
        cfg.rtreeSoa = soa;
        wl.runAccelerated(cfg, stats);
    }

    const auto &objects = wl.tree().orderedObjects();
    const auto &queries = wl.queries();
    const auto &device = wl.deviceResults();
    ASSERT_EQ(device.size(), queries.size()) << "seed " << seed;
    for (size_t q = 0; q < queries.size(); ++q) {
        ASSERT_EQ(device[q], bruteForceOverlaps(objects, queries[q]))
            << "seed " << seed << " query " << q;
    }
}

} // namespace

TEST(OracleRTree, AcceleratedMatchesBruteForceCount)
{
    for (uint64_t seed = 0; seed < 30; ++seed)
        checkRTreeSeed(seed, pickMode(seed), /*baseline=*/false);
}

TEST(OracleRTree, BaselineKernelMatchesBruteForceCount)
{
    for (uint64_t seed = 100; seed < 105; ++seed)
        checkRTreeSeed(seed, sim::AccelMode::BaselineGpu,
                       /*baseline=*/true);
}

// The SoA fanout-8 layout is a pure layout change: the device must
// return the same counts as the brute force on every seed (the index is
// rebuilt at fanout 8, but the object multiset is identical).
TEST(OracleRTree, SoaLayoutMatchesBruteForceCount)
{
    for (uint64_t seed = 200; seed < 215; ++seed)
        checkRTreeSeed(seed, pickMode(seed), /*baseline=*/false,
                       /*soa=*/true);
}

// --- BVH closest-hit -------------------------------------------------------

namespace {

struct SoupHit
{
    bool hit = false;
    float t = 0.0f;
    uint32_t prim = UINT32_MAX;
};

/** Closest hit over every triangle, no acceleration structure. */
SoupHit
bruteForceClosest(const std::vector<Triangle> &tris, const geom::Ray &ray)
{
    SoupHit best;
    geom::Ray r = ray;
    for (uint32_t i = 0; i < tris.size(); ++i) {
        auto h = geom::rayTriangle(r, tris[i].v0, tris[i].v1, tris[i].v2);
        if (h && h->t < r.tmax) {
            best = {true, h->t, i};
            r.tmax = h->t;
        }
    }
    return best;
}

/** Closest hit through the BVH, near-child-first with tmax pruning. */
SoupHit
bvhClosest(const trees::Bvh &bvh, const std::vector<Triangle> &tris,
           const geom::Ray &ray)
{
    SoupHit best;
    geom::Ray r = ray;
    bvh.traverse(r, [&](uint32_t id) {
        auto h = geom::rayTriangle(r, tris[id].v0, tris[id].v1,
                                   tris[id].v2);
        if (h && h->t < r.tmax) {
            best = {true, h->t, id};
            r.tmax = h->t;
        }
    });
    return best;
}

} // namespace

TEST(OracleBvh, TraversalMatchesBruteForceClosestHit)
{
    for (uint64_t seed = 0; seed < 100; ++seed) {
        sim::Rng rng(seed * 6364136223846793005ull + 1442695040888963407ull);
        size_t n_tris = 8 + rng.nextBounded(56);
        std::vector<Triangle> tris(n_tris);
        std::vector<geom::Aabb> boxes(n_tris);
        for (size_t i = 0; i < n_tris; ++i) {
            geom::Vec3 base{rng.uniform(-10.0f, 10.0f),
                            rng.uniform(-10.0f, 10.0f),
                            rng.uniform(-10.0f, 10.0f)};
            auto jitter = [&]() {
                return geom::Vec3{rng.uniform(-1.5f, 1.5f),
                                  rng.uniform(-1.5f, 1.5f),
                                  rng.uniform(-1.5f, 1.5f)};
            };
            tris[i] = {base, base + jitter(), base + jitter()};
            boxes[i].extend(tris[i].v0);
            boxes[i].extend(tris[i].v1);
            boxes[i].extend(tris[i].v2);
        }
        trees::Bvh bvh;
        bvh.build(boxes, 1 + rng.nextBounded(4));

        for (int q = 0; q < 20; ++q) {
            geom::Ray ray;
            ray.origin = {rng.uniform(-14.0f, 14.0f),
                          rng.uniform(-14.0f, 14.0f),
                          rng.uniform(-14.0f, 14.0f)};
            geom::Vec3 target{rng.uniform(-10.0f, 10.0f),
                              rng.uniform(-10.0f, 10.0f),
                              rng.uniform(-10.0f, 10.0f)};
            ray.dir = normalize(target - ray.origin);

            SoupHit brute = bruteForceClosest(tris, ray);
            SoupHit tree = bvhClosest(bvh, tris, ray);
            ASSERT_EQ(tree.hit, brute.hit) << "seed " << seed;
            if (brute.hit) {
                ASSERT_EQ(tree.prim, brute.prim) << "seed " << seed;
                ASSERT_FLOAT_EQ(tree.t, brute.t) << "seed " << seed;
            }
        }
    }
}

// The scene reference intersector — the oracle every cycle-level RT run
// is verified against — must itself match an exhaustive loop over the
// scene's primitives (instances unrolled, alpha mask applied, spheres
// included).
TEST(OracleBvh, SceneReferenceMatchesBruteForce)
{
    const SceneKind kinds[] = {SceneKind::CornellPt, SceneKind::SponzaAo,
                               SceneKind::ShipSh,    SceneKind::TeapotRf,
                               SceneKind::WkndPt,    SceneKind::MaskAm};
    for (SceneKind kind : kinds) {
        RtScene scene(kind, 3);
        const SceneGeometry &g = scene.geometry();
        sim::Rng rng(static_cast<uint64_t>(kind) * 977 + 5);

        auto brute = [&](const geom::Ray &ray) -> RtHit {
            RtHit best;
            geom::Ray r = ray;
            if (g.isSphereScene()) {
                for (uint32_t i = 0; i < g.spheres.size(); ++i) {
                    auto t = geom::raySphere(r, g.spheres[i].first,
                                             g.spheres[i].second);
                    if (t && *t < r.tmax) {
                        best = {true, *t, i, 0};
                        r.tmax = *t;
                    }
                }
                return best;
            }
            auto mesh_loop = [&](uint32_t mesh_id, geom::Ray &mr,
                                 uint32_t inst) {
                const auto &m = g.meshes[mesh_id];
                for (uint32_t i = 0; i < m.triangles.size(); ++i) {
                    auto h = geom::rayTriangle(mr, m.triangles[i].v0,
                                               m.triangles[i].v1,
                                               m.triangles[i].v2);
                    if (!h)
                        continue;
                    if (m.alpha[i] && !RtScene::alphaPass(mesh_id, i))
                        continue;
                    best = {true, h->t, i, inst};
                    mr.tmax = h->t;
                }
            };
            if (!g.twoLevel()) {
                mesh_loop(0, r, 0);
                return best;
            }
            for (size_t i = 0; i < g.instances.size(); ++i) {
                const auto &inst = g.instances[i];
                geom::Ray obj;
                obj.origin = trees::transformPoint(inst.worldToObject,
                                                   r.origin);
                obj.dir = trees::transformDir(inst.worldToObject, r.dir);
                obj.tmin = r.tmin;
                obj.tmax = r.tmax;
                mesh_loop(inst.mesh, obj, static_cast<uint32_t>(i));
                r.tmax = obj.tmax;
            }
            return best;
        };

        for (int q = 0; q < 50; ++q) {
            geom::Ray ray;
            ray.origin = g.cameraPos +
                         geom::Vec3{rng.uniform(-0.5f, 0.5f),
                                    rng.uniform(-0.5f, 0.5f),
                                    rng.uniform(-0.5f, 0.5f)};
            geom::Vec3 target =
                g.cameraTarget + geom::Vec3{rng.uniform(-3.0f, 3.0f),
                                            rng.uniform(-3.0f, 3.0f),
                                            rng.uniform(-3.0f, 3.0f)};
            ray.dir = normalize(target - ray.origin);

            RtHit ref = scene.closestHit(ray);
            RtHit exhaustive = brute(ray);
            ASSERT_EQ(ref.hit, exhaustive.hit)
                << sceneName(kind) << " ray " << q;
            if (ref.hit) {
                ASSERT_EQ(ref.prim, exhaustive.prim)
                    << sceneName(kind) << " ray " << q;
                ASSERT_EQ(ref.instance, exhaustive.instance)
                    << sceneName(kind) << " ray " << q;
                ASSERT_FLOAT_EQ(ref.t, exhaustive.t)
                    << sceneName(kind) << " ray " << q;
            }
        }
    }
}

// Closes the chain: the cycle-level device is verified ray-by-ray
// against RtScene::closestHit inside runAccelerated (panic on any
// mismatch), and closestHit matches the brute force above.
TEST(OracleBvh, CycleLevelDeviceMatchesReference)
{
    RayTracingWorkload wl(SceneKind::CornellPt, 16, 16, 3);
    sim::StatRegistry stats;
    RunMetrics m =
        wl.runAccelerated(modeConfig(sim::AccelMode::TtaPlus), stats);
    EXPECT_GT(m.cycles, 0u);
    EXPECT_GT(m.nodesVisited, 0u);
}

// --- Wide SoA BVH ----------------------------------------------------------
//
// The wide node layouts must be pure layout changes: every width, with
// and without the quantized encoding, answers queries identically to
// the binary tree. Quantized boxes are conservative (decoded planes
// never cut inside the exact box), so they may only widen the candidate
// set; the exact tests applied at the leaves keep the results equal.

namespace {

/** Closest hit through a WideBvh, mirroring bvhClosest above. */
SoupHit
wideClosest(const trees::WideBvh &wide, const std::vector<Triangle> &tris,
            const geom::Ray &ray)
{
    SoupHit best;
    geom::Ray r = ray;
    wide.traverse(r, [&](uint32_t id) {
        auto h = geom::rayTriangle(r, tris[id].v0, tris[id].v1,
                                   tris[id].v2);
        if (h && h->t < r.tmax) {
            best = {true, h->t, id};
            r.tmax = h->t;
        }
    });
    return best;
}

struct WideVariant
{
    uint32_t width;
    bool quantized;
};

constexpr WideVariant kWideVariants[] = {
    {4, false}, {8, false}, {4, true}, {8, true}};

} // namespace

TEST(OracleWideBvh, ClosestHitMatchesBinaryTree)
{
    for (uint64_t seed = 0; seed < 60; ++seed) {
        sim::Rng rng(seed * 2862933555777941757ull + 3037000493ull);
        size_t n_tris = 8 + rng.nextBounded(88);
        std::vector<Triangle> tris(n_tris);
        std::vector<geom::Aabb> boxes(n_tris);
        for (size_t i = 0; i < n_tris; ++i) {
            geom::Vec3 base{rng.uniform(-10.0f, 10.0f),
                            rng.uniform(-10.0f, 10.0f),
                            rng.uniform(-10.0f, 10.0f)};
            auto jitter = [&]() {
                return geom::Vec3{rng.uniform(-1.5f, 1.5f),
                                  rng.uniform(-1.5f, 1.5f),
                                  rng.uniform(-1.5f, 1.5f)};
            };
            tris[i] = {base, base + jitter(), base + jitter()};
            boxes[i].extend(tris[i].v0);
            boxes[i].extend(tris[i].v1);
            boxes[i].extend(tris[i].v2);
        }
        trees::Bvh bvh;
        bvh.build(boxes, 1 + rng.nextBounded(4));

        trees::WideBvh wides[std::size(kWideVariants)];
        for (size_t v = 0; v < std::size(kWideVariants); ++v)
            wides[v].build(bvh, kWideVariants[v].width,
                           kWideVariants[v].quantized);

        for (int q = 0; q < 10; ++q) {
            geom::Ray ray;
            ray.origin = {rng.uniform(-14.0f, 14.0f),
                          rng.uniform(-14.0f, 14.0f),
                          rng.uniform(-14.0f, 14.0f)};
            geom::Vec3 target{rng.uniform(-10.0f, 10.0f),
                              rng.uniform(-10.0f, 10.0f),
                              rng.uniform(-10.0f, 10.0f)};
            ray.dir = normalize(target - ray.origin);

            SoupHit bin = bvhClosest(bvh, tris, ray);
            for (size_t v = 0; v < std::size(kWideVariants); ++v) {
                SoupHit w = wideClosest(wides[v], tris, ray);
                ASSERT_EQ(w.hit, bin.hit)
                    << "seed " << seed << " width "
                    << kWideVariants[v].width
                    << (kWideVariants[v].quantized ? " quantized" : "");
                if (bin.hit) {
                    ASSERT_EQ(w.prim, bin.prim)
                        << "seed " << seed << " width "
                        << kWideVariants[v].width;
                    ASSERT_FLOAT_EQ(w.t, bin.t)
                        << "seed " << seed << " width "
                        << kWideVariants[v].width;
                }
            }
        }
    }
}

TEST(OracleWideBvh, RadiusQueryMatchesBinaryTree)
{
    for (uint64_t seed = 0; seed < 60; ++seed) {
        sim::Rng rng(seed * 6364136223846793005ull + 97531);
        size_t n_pts = 16 + rng.nextBounded(120);
        std::vector<geom::Vec3> pts(n_pts);
        std::vector<geom::Aabb> boxes(n_pts);
        for (size_t i = 0; i < n_pts; ++i) {
            pts[i] = {rng.uniform(-20.0f, 20.0f),
                      rng.uniform(-20.0f, 20.0f),
                      rng.uniform(-20.0f, 20.0f)};
            boxes[i].extend(pts[i]);
        }
        trees::Bvh bvh;
        bvh.build(boxes, 1 + rng.nextBounded(4));

        trees::WideBvh wides[std::size(kWideVariants)];
        for (size_t v = 0; v < std::size(kWideVariants); ++v)
            wides[v].build(bvh, kWideVariants[v].width,
                           kWideVariants[v].quantized);

        for (int q = 0; q < 8; ++q) {
            geom::Vec3 query{rng.uniform(-22.0f, 22.0f),
                             rng.uniform(-22.0f, 22.0f),
                             rng.uniform(-22.0f, 22.0f)};
            float radius = rng.uniform(1.0f, 6.0f);
            // The exact leaf predicate filters the (possibly wider)
            // candidate set down to the same answer on every layout.
            auto exact = [&](const trees::Bvh *b,
                             const trees::WideBvh *w) {
                std::vector<uint32_t> ids;
                auto leaf = [&](uint32_t id) {
                    if (geom::pointWithinRadius(query, pts[id], radius))
                        ids.push_back(id);
                };
                if (b)
                    b->pointQuery(query, radius, leaf);
                else
                    w->pointQuery(query, radius, leaf);
                std::sort(ids.begin(), ids.end());
                return ids;
            };
            std::vector<uint32_t> bin = exact(&bvh, nullptr);
            for (size_t v = 0; v < std::size(kWideVariants); ++v) {
                ASSERT_EQ(exact(nullptr, &wides[v]), bin)
                    << "seed " << seed << " width "
                    << kWideVariants[v].width
                    << (kWideVariants[v].quantized ? " quantized" : "");
            }
        }
    }
}

// Cycle-level device runs on the wide layouts: RtnnWorkload::verify
// panics on any divergence from the host brute-force expectation, so a
// completing run proves the serialized wide nodes decode to the same
// answers the binary layout gives.
TEST(OracleWideBvh, DeviceWideRtnnMatchesExpected)
{
    const WideVariant device_variants[] = {{4, false}, {8, false},
                                           {4, true}};
    for (const auto &variant : device_variants) {
        RtnnWorkload wl(1200, 32, 1.0f, 11);
        sim::Config cfg = modeConfig(sim::AccelMode::Tta);
        cfg.bvhNodeWidth = variant.width;
        cfg.bvhQuantized = variant.quantized;
        sim::StatRegistry stats;
        RunMetrics m = wl.runAccelerated(cfg, stats, true);
        EXPECT_GT(m.cycles, 0u) << "width " << variant.width;
        EXPECT_GT(m.nodeBytesFetched, 0u) << "width " << variant.width;
    }
}
