/**
 * @file
 * Workload integration tests: every benchmark application, on every
 * hardware level it supports, produces verified-correct results (each
 * run* method panics on any device/reference mismatch) and qualitatively
 * sane metrics.
 */

#include <gtest/gtest.h>

#include "workloads/btree_workload.hh"
#include "workloads/nbody_workload.hh"
#include "workloads/raytracing_workload.hh"
#include "workloads/rtnn_workload.hh"

using namespace tta;
using namespace ::tta::workloads;

namespace {

sim::Config
modeConfig(sim::AccelMode mode)
{
    sim::Config cfg;
    cfg.accelMode = mode;
    return cfg;
}

} // namespace

// --- B-Tree ----------------------------------------------------------------

class BTreeModes : public ::testing::TestWithParam<
                       std::tuple<trees::BTreeKind, sim::AccelMode>>
{};

TEST_P(BTreeModes, CorrectAndAccelerated)
{
    auto [kind, mode] = GetParam();
    BTreeWorkload wl(kind, 20000, 1024, 17);

    sim::StatRegistry base_stats;
    RunMetrics base = wl.runBaseline(modeConfig(sim::AccelMode::BaselineGpu),
                                     base_stats);
    sim::StatRegistry accel_stats;
    RunMetrics accel = wl.runAccelerated(modeConfig(mode), accel_stats);

    // The headline result: hardware traversal wins, and one traverseTree
    // instruction replaces the whole software loop (Fig 20).
    EXPECT_LT(accel.cycles, base.cycles)
        << trees::bTreeKindName(kind);
    EXPECT_LT(accel.totalInsts(), base.totalInsts() / 4);
    EXPECT_GT(accel.instsAccel, 0u);
    EXPECT_GT(accel.nodesVisited, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    KindsByMode, BTreeModes,
    ::testing::Combine(::testing::Values(trees::BTreeKind::BTree,
                                         trees::BTreeKind::BStarTree,
                                         trees::BTreeKind::BPlusTree),
                       ::testing::Values(sim::AccelMode::Tta,
                                         sim::AccelMode::TtaPlus)));

TEST(BTreeWorkload, BaselineRtaCannotRunQueryKey)
{
    BTreeWorkload wl(trees::BTreeKind::BTree, 1000, 64, 3);
    sim::StatRegistry stats;
    EXPECT_THROW(
        wl.runAccelerated(modeConfig(sim::AccelMode::BaselineRta), stats),
        sim::FatalError);
}

TEST(BTreeWorkload, DivergentBaselineHasLowSimtEfficiency)
{
    BTreeWorkload wl(trees::BTreeKind::BTree, 50000, 2048, 5);
    sim::StatRegistry stats;
    RunMetrics m = wl.runBaseline(modeConfig(sim::AccelMode::BaselineGpu),
                                  stats);
    // Fig 1: B-Tree search diverges heavily.
    EXPECT_LT(m.simtEfficiency, 0.6);
    EXPECT_GT(m.simtEfficiency, 0.01);
}

// --- N-Body ----------------------------------------------------------------

class NBodyDims : public ::testing::TestWithParam<int>
{};

TEST_P(NBodyDims, AllModesVerifyAndBeatBaseline)
{
    NBodyWorkload wl(GetParam(), 2048, 21);
    sim::StatRegistry s0;
    RunMetrics base = wl.runBaseline(modeConfig(sim::AccelMode::BaselineGpu),
                                     s0);
    sim::StatRegistry s1;
    RunMetrics tta = wl.runAccelerated(modeConfig(sim::AccelMode::Tta), s1);
    sim::StatRegistry s2;
    RunMetrics tp =
        wl.runAccelerated(modeConfig(sim::AccelMode::TtaPlus), s2);
    // Both accelerated configurations verified internally; the TTA run
    // offloads the traversal (Fig 12's N-Body band).
    EXPECT_LT(tta.cycles, base.cycles);
    EXPECT_GT(tp.nodesVisited, 0u);
    // High SIMT efficiency for the warp-synchronous baseline (Fig 1).
    EXPECT_GT(base.simtEfficiency, 0.8);
}

INSTANTIATE_TEST_SUITE_P(Dims, NBodyDims, ::testing::Values(2, 3));

TEST(NBodyWorkload, FusionOverlapsTraversalAndPostProcessing)
{
    NBodyWorkload wl(3, 2048, 23);
    sim::StatRegistry s1;
    RunMetrics serial =
        wl.runAccelerated(modeConfig(sim::AccelMode::TtaPlus), s1, false);
    sim::StatRegistry s2;
    RunMetrics fused =
        wl.runAccelerated(modeConfig(sim::AccelMode::TtaPlus), s2, true);
    // Kernel merge must not be slower; typically it overlaps the
    // integration with the traversal (Section V-A's extra 1.2x).
    EXPECT_LE(fused.cycles, serial.cycles * 101 / 100);
}

// --- RTNN ------------------------------------------------------------------

TEST(RtnnWorkload, AllConfigurationsVerify)
{
    RtnnWorkload wl(8192, 1024, 1.0f, 31);
    sim::StatRegistry s0;
    RunMetrics cuda = wl.runBaseline(modeConfig(sim::AccelMode::BaselineGpu),
                                     s0);
    // Radius search on the cores diverges badly (the RTNN motivation).
    EXPECT_LT(cuda.simtEfficiency, 0.5);

    sim::StatRegistry s1;
    RunMetrics rta = wl.runAccelerated(
        modeConfig(sim::AccelMode::BaselineRta), s1, false);
    EXPECT_LT(rta.cycles, cuda.cycles); // RTNN's claim vs CUDA

    sim::StatRegistry s2;
    RunMetrics star_tta =
        wl.runAccelerated(modeConfig(sim::AccelMode::Tta), s2, true);
    sim::StatRegistry s3;
    RunMetrics tta =
        wl.runAccelerated(modeConfig(sim::AccelMode::Tta), s3, false);
    // *RTNN: offloading the intersection shader helps (Fig 12).
    EXPECT_LT(star_tta.cycles, tta.cycles);

    sim::StatRegistry s4;
    RunMetrics star_tp =
        wl.runAccelerated(modeConfig(sim::AccelMode::TtaPlus), s4, true);
    EXPECT_GT(star_tp.nodesVisited, 0u);
}

TEST(RtnnWorkload, OffloadOnBaselineRtaRejected)
{
    RtnnWorkload wl(2048, 128, 1.0f, 7);
    sim::StatRegistry stats;
    EXPECT_THROW(wl.runAccelerated(modeConfig(sim::AccelMode::BaselineRta),
                                   stats, true),
                 sim::FatalError);
}

// --- Ray tracing -------------------------------------------------------------

TEST(RayTracing, TwoLevelSceneTraversesOnAllLevels)
{
    RayTracingWorkload wl(SceneKind::CornellPt, 32, 32, 3);
    sim::StatRegistry s0;
    RunMetrics rta =
        wl.runAccelerated(modeConfig(sim::AccelMode::BaselineRta), s0);
    sim::StatRegistry s1;
    RunMetrics tp =
        wl.runAccelerated(modeConfig(sim::AccelMode::TtaPlus), s1);
    EXPECT_GT(rta.nodesVisited, 0u);
    EXPECT_GT(tp.nodesVisited, 0u);
    // Two-level scenes must exercise the transform units.
    EXPECT_GT(s0.counterValue("rta.ops.transform"), 0u);
}

TEST(RayTracing, WkndSphereOffload)
{
    RayTracingWorkload wl(SceneKind::WkndPt, 32, 32, 3);
    sim::StatRegistry s0;
    RunMetrics plain =
        wl.runAccelerated(modeConfig(sim::AccelMode::TtaPlus), s0);
    // Unstarred WKND_PT runs its ray-sphere tests in shaders.
    EXPECT_GT(s0.counterValue("shader.calls"), 0u);
    EXPECT_GT(plain.cycles, 0u);

    sim::StatRegistry s1;
    RtOptions offload;
    offload.offloadSpheres = true;
    RunMetrics starred =
        wl.runAccelerated(modeConfig(sim::AccelMode::TtaPlus), s1, offload);
    // *WKND_PT eliminates the intersection shaders entirely.
    EXPECT_EQ(s1.counterValue("shader.calls"), 0u);
    EXPECT_GT(starred.nodesVisited, 0u);
}

TEST(RayTracing, ShipShadowWithSato)
{
    RayTracingWorkload wl(SceneKind::ShipSh, 24, 24, 3);
    sim::StatRegistry s0;
    RunMetrics plain =
        wl.runAccelerated(modeConfig(sim::AccelMode::TtaPlus), s0);
    sim::StatRegistry s1;
    RtOptions sato;
    sato.sato = true;
    RunMetrics opt =
        wl.runAccelerated(modeConfig(sim::AccelMode::TtaPlus), s1, sato);
    // SATO reorders traversal for the any-hit wave: it must stay correct
    // (verified internally) and not visit more nodes on shadow rays.
    EXPECT_LE(opt.cycles, plain.cycles * 23 / 20);
}

TEST(RayTracing, BaselineCoreTracerMatchesReference)
{
    RayTracingWorkload wl(SceneKind::SponzaAo, 24, 24, 3);
    sim::StatRegistry stats;
    // Internally verifies every primary ray against the host reference.
    RunMetrics m =
        wl.runBaselineCores(modeConfig(sim::AccelMode::BaselineGpu), stats);
    EXPECT_GT(m.cycles, 0u);
    EXPECT_GT(m.flops, 0u);
    EXPECT_LT(m.simtEfficiency, 1.0);
}

TEST(RayTracing, AlphaMaskUsesShaders)
{
    RayTracingWorkload wl(SceneKind::MaskAm, 24, 24, 3);
    sim::StatRegistry stats;
    RunMetrics m =
        wl.runAccelerated(modeConfig(sim::AccelMode::BaselineRta), stats);
    EXPECT_GT(stats.counterValue("shader.calls"), 0u);
    EXPECT_GT(m.cycles, 0u);
}

// --- Cross-cutting metrics ---------------------------------------------------

TEST(Metrics, EnergyBreakdownPopulated)
{
    BTreeWorkload wl(trees::BTreeKind::BTree, 5000, 512, 3);
    sim::StatRegistry stats;
    RunMetrics m = wl.runAccelerated(modeConfig(sim::AccelMode::Tta), stats);
    EXPECT_GT(m.energy.total(), 0.0);
    EXPECT_GT(m.energy.warpBuffer, 0.0);
    EXPECT_GT(m.energy.intersection, 0.0);
    EXPECT_GE(m.dramUtilization, 0.0);
    EXPECT_LE(m.dramUtilization, 1.0);
    // Arithmetic intensity is a core-side (roofline) metric: the B-Tree
    // baseline kernel has FP compares, the accelerated run offloads all
    // of them.
    sim::StatRegistry base_stats;
    RunMetrics base =
        wl.runBaseline(modeConfig(sim::AccelMode::BaselineGpu), base_stats);
    EXPECT_GT(base.arithmeticIntensity(), 0.0);
}

TEST(Metrics, Figure14LatencyScaleKnob)
{
    BTreeWorkload wl(trees::BTreeKind::BTree, 20000, 1024, 5);
    sim::Config normal = modeConfig(sim::AccelMode::Tta);
    sim::StatRegistry s0;
    RunMetrics base = wl.runAccelerated(normal, s0);

    sim::Config slow = normal;
    slow.intersectionLatencyScale = 10.0;
    sim::StatRegistry s1;
    RunMetrics scaled = wl.runAccelerated(slow, s1);
    // 10x intersection latency hurts, but memory latency dominates
    // (Fig 14's observation).
    EXPECT_GE(scaled.cycles, base.cycles);
    EXPECT_LT(scaled.cycles, base.cycles * 4);
}

TEST(Metrics, Figure14WarpBufferKnob)
{
    BTreeWorkload wl(trees::BTreeKind::BTree, 20000, 2048, 5);
    sim::Config small_cfg = modeConfig(sim::AccelMode::Tta);
    small_cfg.warpBufferWarps = 1;
    sim::StatRegistry s0;
    RunMetrics one = wl.runAccelerated(small_cfg, s0);

    sim::Config big_cfg = modeConfig(sim::AccelMode::Tta);
    big_cfg.warpBufferWarps = 8;
    sim::StatRegistry s1;
    RunMetrics eight = wl.runAccelerated(big_cfg, s1);
    // More warp-buffer entries => more concurrent queries => faster.
    EXPECT_LT(eight.cycles, one.cycles);
}

TEST(Metrics, Figure17PerfectMemoryKnobs)
{
    RayTracingWorkload wl(SceneKind::WkndPt, 24, 24, 3);
    sim::Config normal = modeConfig(sim::AccelMode::TtaPlus);
    sim::StatRegistry s0;
    RunMetrics base = wl.runAccelerated(normal, s0);

    sim::Config perf_rt = normal;
    perf_rt.perfectNodeFetch = true;
    sim::StatRegistry s1;
    RunMetrics rt = wl.runAccelerated(perf_rt, s1);

    sim::Config perf_mem = normal;
    perf_mem.perfectMemory = true;
    sim::StatRegistry s2;
    RunMetrics memr = wl.runAccelerated(perf_mem, s2);

    EXPECT_LE(rt.cycles, base.cycles);
    EXPECT_LE(memr.cycles, rt.cycles);
}
