/**
 * @file
 * End-to-end smoke tests: the B-Tree workload must produce correct
 * results and sane relative performance on every hardware level.
 */

#include <gtest/gtest.h>

#include "sim/config.hh"
#include "workloads/btree_workload.hh"

using namespace tta;
using workloads::BTreeWorkload;
using workloads::RunMetrics;

TEST(Smoke, BTreeBaselineCorrect)
{
    BTreeWorkload wl(trees::BTreeKind::BTree, 2000, 256, 7);
    sim::Config cfg;
    sim::StatRegistry stats;
    RunMetrics m = wl.runBaseline(cfg, stats);
    EXPECT_GT(m.cycles, 0u);
    EXPECT_GT(m.instsAlu, 0u);
    EXPECT_GT(m.simtEfficiency, 0.0);
    EXPECT_LT(m.simtEfficiency, 1.01);
}

TEST(Smoke, BTreeTtaCorrectAndFaster)
{
    BTreeWorkload wl(trees::BTreeKind::BTree, 20000, 2048, 7);

    sim::Config base_cfg;
    sim::StatRegistry base_stats;
    RunMetrics base = wl.runBaseline(base_cfg, base_stats);

    sim::Config tta_cfg;
    tta_cfg.accelMode = sim::AccelMode::Tta;
    sim::StatRegistry tta_stats;
    RunMetrics tta = wl.runAccelerated(tta_cfg, tta_stats);

    EXPECT_GT(tta.nodesVisited, 0u);
    // The headline claim: TTA beats the software baseline.
    EXPECT_LT(tta.cycles, base.cycles);
    // And eliminates almost all dynamic instructions (Fig 20).
    EXPECT_LT(tta.totalInsts(), base.totalInsts() / 4);
}

TEST(Smoke, BTreeTtaPlusCorrect)
{
    BTreeWorkload wl(trees::BTreeKind::BPlusTree, 5000, 512, 11);
    sim::Config cfg;
    cfg.accelMode = sim::AccelMode::TtaPlus;
    sim::StatRegistry stats;
    RunMetrics m = wl.runAccelerated(cfg, stats);
    EXPECT_GT(m.cycles, 0u);
    EXPECT_GT(m.nodesVisited, 0u);
}
