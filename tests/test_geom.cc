/**
 * @file
 * Unit + property tests for the geometry substrate: the functional ground
 * truth behind every intersection unit.
 */

#include <gtest/gtest.h>

#include "geom/aabb.hh"
#include "geom/intersect.hh"
#include "geom/ray.hh"
#include "geom/vec.hh"
#include "sim/rng.hh"

using namespace tta::geom;
using tta::sim::Rng;

TEST(Vec3, Arithmetic)
{
    Vec3 a(1, 2, 3), b(4, 5, 6);
    EXPECT_EQ(a + b, Vec3(5, 7, 9));
    EXPECT_EQ(b - a, Vec3(3, 3, 3));
    EXPECT_EQ(a * 2.0f, Vec3(2, 4, 6));
    EXPECT_FLOAT_EQ(dot(a, b), 32.0f);
    EXPECT_EQ(cross(Vec3(1, 0, 0), Vec3(0, 1, 0)), Vec3(0, 0, 1));
}

TEST(Vec3, NormalizeAndLength)
{
    Vec3 v(3, 4, 0);
    EXPECT_FLOAT_EQ(length(v), 5.0f);
    Vec3 n = normalize(v);
    EXPECT_NEAR(length(n), 1.0f, 1e-6f);
    EXPECT_EQ(normalize(Vec3(0.0f)), Vec3(0.0f)); // zero-safe
}

TEST(Aabb, ExtendContainsArea)
{
    Aabb box;
    EXPECT_FALSE(box.valid());
    box.extend({0, 0, 0});
    box.extend({2, 3, 4});
    EXPECT_TRUE(box.valid());
    EXPECT_TRUE(box.contains({1, 1, 1}));
    EXPECT_FALSE(box.contains({3, 1, 1}));
    EXPECT_FLOAT_EQ(box.surfaceArea(), 2.0f * (6 + 12 + 8));
    EXPECT_EQ(box.widestAxis(), 2);
}

TEST(RayBox, HitAndMiss)
{
    Aabb box({0, 0, 0}, {1, 1, 1});
    Ray ray;
    ray.origin = {-1, 0.5f, 0.5f};
    ray.dir = {1, 0, 0};
    auto hit = rayBox(ray, box);
    ASSERT_TRUE(hit.has_value());
    EXPECT_FLOAT_EQ(hit->tenter, 1.0f);
    EXPECT_FLOAT_EQ(hit->texit, 2.0f);

    ray.dir = {-1, 0, 0}; // pointing away
    EXPECT_FALSE(rayBox(ray, box).has_value());

    ray.origin = {0.5f, 0.5f, 0.5f}; // origin inside
    ray.dir = {0, 0, 1};
    auto inside = rayBox(ray, box);
    ASSERT_TRUE(inside.has_value());
    EXPECT_FLOAT_EQ(inside->tenter, 0.0f);
}

TEST(RayBox, RespectsTminTmax)
{
    Aabb box({10, -1, -1}, {11, 1, 1});
    Ray ray;
    ray.origin = {0, 0, 0};
    ray.dir = {1, 0, 0};
    ray.tmax = 5.0f; // box beyond reach
    EXPECT_FALSE(rayBox(ray, box).has_value());
}

TEST(RayBox, AxisParallelRay)
{
    // Zero direction components exercise the IEEE inf/NaN handling.
    Aabb box({0, 0, 0}, {1, 1, 1});
    Ray ray;
    ray.origin = {0.5f, 0.5f, -2};
    ray.dir = {0, 0, 1};
    ASSERT_TRUE(rayBox(ray, box).has_value());
    ray.origin = {2.0f, 0.5f, -2}; // parallel, outside the slab
    EXPECT_FALSE(rayBox(ray, box).has_value());
}

TEST(RayTriangle, BarycentricsAndMiss)
{
    Vec3 v0(0, 0, 0), v1(1, 0, 0), v2(0, 1, 0);
    Ray ray;
    ray.origin = {0.25f, 0.25f, 1};
    ray.dir = {0, 0, -1};
    auto hit = rayTriangle(ray, v0, v1, v2);
    ASSERT_TRUE(hit.has_value());
    EXPECT_FLOAT_EQ(hit->t, 1.0f);
    EXPECT_FLOAT_EQ(hit->u, 0.25f);
    EXPECT_FLOAT_EQ(hit->v, 0.25f);

    ray.origin = {0.9f, 0.9f, 1}; // outside u+v <= 1
    EXPECT_FALSE(rayTriangle(ray, v0, v1, v2).has_value());

    ray.origin = {0.25f, 0.25f, 1};
    ray.dir = {1, 0, 0}; // parallel to the plane
    EXPECT_FALSE(rayTriangle(ray, v0, v1, v2).has_value());
}

TEST(RaySphere, EntryAndInside)
{
    Ray ray;
    ray.origin = {-5, 0, 0};
    ray.dir = {1, 0, 0};
    auto t = raySphere(ray, {0, 0, 0}, 1.0f);
    ASSERT_TRUE(t.has_value());
    EXPECT_FLOAT_EQ(*t, 4.0f);

    // Origin inside the sphere: the exit point is returned.
    ray.origin = {0, 0, 0};
    auto exit = raySphere(ray, {0, 0, 0}, 1.0f);
    ASSERT_TRUE(exit.has_value());
    EXPECT_FLOAT_EQ(*exit, 1.0f);

    ray.origin = {-5, 3, 0}; // misses
    EXPECT_FALSE(raySphere(ray, {0, 0, 0}, 1.0f).has_value());
}

TEST(PointDistance, Algorithm2Semantics)
{
    EXPECT_TRUE(pointWithinRadius({0, 0, 0}, {1, 0, 0}, 1.5f));
    EXPECT_FALSE(pointWithinRadius({0, 0, 0}, {2, 0, 0}, 1.5f));
    // Strict inequality, like Algorithm 2's (dis2 < threshold2).
    EXPECT_FALSE(pointWithinRadius({0, 0, 0}, {1, 0, 0}, 1.0f));
    EXPECT_FLOAT_EQ(distanceSquared({1, 2, 3}, {4, 6, 3}), 25.0f);
}

TEST(QueryKey, Algorithm1Reference)
{
    float keys[9] = {2, 4, 6, 8, 10, 12, 14, 16,
                     std::numeric_limits<float>::infinity()};
    auto hit = queryKeyCompare(8.0f, keys, 9);
    EXPECT_TRUE(hit.found);
    EXPECT_EQ(hit.matchIndex, 3);

    auto miss = queryKeyCompare(7.0f, keys, 9);
    EXPECT_FALSE(miss.found);
    EXPECT_EQ(miss.child, 3); // first key greater than the query

    auto below = queryKeyCompare(1.0f, keys, 9);
    EXPECT_EQ(below.child, 0);
    auto above = queryKeyCompare(100.0f, keys, 9);
    EXPECT_EQ(above.child, 8); // +inf sentinel catches it
}

// Property sweep: ray-box results are consistent under ray offsetting —
// if a ray hits at [tenter, texit], the same ray advanced by s hits at
// [tenter - s, texit - s] (while it still starts outside).
class RayBoxProperty : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(RayBoxProperty, TranslationConsistency)
{
    Rng rng(GetParam());
    for (int iter = 0; iter < 200; ++iter) {
        Aabb box;
        box.extend({rng.uniform(-5, 5), rng.uniform(-5, 5),
                    rng.uniform(-5, 5)});
        box.extend({rng.uniform(-5, 5), rng.uniform(-5, 5),
                    rng.uniform(-5, 5)});
        Ray ray;
        ray.origin = {rng.uniform(-20, -10), rng.uniform(-5, 5),
                      rng.uniform(-5, 5)};
        ray.dir = normalize({rng.uniform(0.2f, 1), rng.uniform(-1, 1),
                             rng.uniform(-1, 1)});
        auto hit = rayBox(ray, box);
        if (!hit || hit->tenter < 1.0f)
            continue;
        float s = hit->tenter * 0.5f;
        Ray moved = ray;
        moved.origin = ray.at(s);
        auto hit2 = rayBox(moved, box);
        ASSERT_TRUE(hit2.has_value());
        EXPECT_NEAR(hit2->tenter, hit->tenter - s,
                    1e-3f * (1.0f + hit->tenter));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RayBoxProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// Property sweep: a hit reported by rayTriangle always reconstructs a
// point inside the triangle (barycentric validity).
class RayTriProperty : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(RayTriProperty, BarycentricReconstruction)
{
    Rng rng(GetParam());
    int hits = 0;
    for (int iter = 0; iter < 400; ++iter) {
        Vec3 v0(rng.uniform(-3, 3), rng.uniform(-3, 3), rng.uniform(2, 4));
        Vec3 v1 = v0 + Vec3(rng.uniform(0.5f, 2), rng.uniform(-1, 1), 0);
        Vec3 v2 = v0 + Vec3(rng.uniform(-1, 1), rng.uniform(0.5f, 2), 0);
        Ray ray;
        ray.origin = {rng.uniform(-3, 3), rng.uniform(-3, 3), 0};
        ray.dir = normalize(
            (v0 + v1 + v2) / 3.0f +
            Vec3(rng.uniform(-1, 1), rng.uniform(-1, 1), 0) * 0.5f -
            ray.origin);
        auto hit = rayTriangle(ray, v0, v1, v2);
        if (!hit)
            continue;
        ++hits;
        EXPECT_GE(hit->u, 0.0f);
        EXPECT_GE(hit->v, 0.0f);
        EXPECT_LE(hit->u + hit->v, 1.0f + 1e-5f);
        Vec3 reconstructed = v0 * (1.0f - hit->u - hit->v) + v1 * hit->u +
                             v2 * hit->v;
        Vec3 sample = ray.at(hit->t);
        EXPECT_NEAR(length(reconstructed - sample), 0.0f, 1e-3f);
    }
    EXPECT_GT(hits, 10); // the sweep actually exercised the hit path
}

INSTANTIATE_TEST_SUITE_P(Seeds, RayTriProperty,
                         ::testing::Values(11, 12, 13, 14));
