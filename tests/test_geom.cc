/**
 * @file
 * Unit + property tests for the geometry substrate: the functional ground
 * truth behind every intersection unit.
 */

#include <gtest/gtest.h>

#include "geom/aabb.hh"
#include "geom/intersect.hh"
#include "geom/ray.hh"
#include "geom/vec.hh"
#include "sim/rng.hh"
#include "trees/rtree.hh"

using namespace tta::geom;
using tta::sim::Rng;

TEST(Vec3, Arithmetic)
{
    Vec3 a(1, 2, 3), b(4, 5, 6);
    EXPECT_EQ(a + b, Vec3(5, 7, 9));
    EXPECT_EQ(b - a, Vec3(3, 3, 3));
    EXPECT_EQ(a * 2.0f, Vec3(2, 4, 6));
    EXPECT_FLOAT_EQ(dot(a, b), 32.0f);
    EXPECT_EQ(cross(Vec3(1, 0, 0), Vec3(0, 1, 0)), Vec3(0, 0, 1));
}

TEST(Vec3, NormalizeAndLength)
{
    Vec3 v(3, 4, 0);
    EXPECT_FLOAT_EQ(length(v), 5.0f);
    Vec3 n = normalize(v);
    EXPECT_NEAR(length(n), 1.0f, 1e-6f);
    EXPECT_EQ(normalize(Vec3(0.0f)), Vec3(0.0f)); // zero-safe
}

TEST(Aabb, ExtendContainsArea)
{
    Aabb box;
    EXPECT_FALSE(box.valid());
    box.extend({0, 0, 0});
    box.extend({2, 3, 4});
    EXPECT_TRUE(box.valid());
    EXPECT_TRUE(box.contains({1, 1, 1}));
    EXPECT_FALSE(box.contains({3, 1, 1}));
    EXPECT_FLOAT_EQ(box.surfaceArea(), 2.0f * (6 + 12 + 8));
    EXPECT_EQ(box.widestAxis(), 2);
}

TEST(RayBox, HitAndMiss)
{
    Aabb box({0, 0, 0}, {1, 1, 1});
    Ray ray;
    ray.origin = {-1, 0.5f, 0.5f};
    ray.dir = {1, 0, 0};
    auto hit = rayBox(ray, box);
    ASSERT_TRUE(hit.has_value());
    EXPECT_FLOAT_EQ(hit->tenter, 1.0f);
    EXPECT_FLOAT_EQ(hit->texit, 2.0f);

    ray.dir = {-1, 0, 0}; // pointing away
    EXPECT_FALSE(rayBox(ray, box).has_value());

    ray.origin = {0.5f, 0.5f, 0.5f}; // origin inside
    ray.dir = {0, 0, 1};
    auto inside = rayBox(ray, box);
    ASSERT_TRUE(inside.has_value());
    EXPECT_FLOAT_EQ(inside->tenter, 0.0f);
}

TEST(RayBox, RespectsTminTmax)
{
    Aabb box({10, -1, -1}, {11, 1, 1});
    Ray ray;
    ray.origin = {0, 0, 0};
    ray.dir = {1, 0, 0};
    ray.tmax = 5.0f; // box beyond reach
    EXPECT_FALSE(rayBox(ray, box).has_value());
}

TEST(RayBox, AxisParallelRay)
{
    // Zero direction components exercise the IEEE inf/NaN handling.
    Aabb box({0, 0, 0}, {1, 1, 1});
    Ray ray;
    ray.origin = {0.5f, 0.5f, -2};
    ray.dir = {0, 0, 1};
    ASSERT_TRUE(rayBox(ray, box).has_value());
    ray.origin = {2.0f, 0.5f, -2}; // parallel, outside the slab
    EXPECT_FALSE(rayBox(ray, box).has_value());
}

TEST(RayTriangle, BarycentricsAndMiss)
{
    Vec3 v0(0, 0, 0), v1(1, 0, 0), v2(0, 1, 0);
    Ray ray;
    ray.origin = {0.25f, 0.25f, 1};
    ray.dir = {0, 0, -1};
    auto hit = rayTriangle(ray, v0, v1, v2);
    ASSERT_TRUE(hit.has_value());
    EXPECT_FLOAT_EQ(hit->t, 1.0f);
    EXPECT_FLOAT_EQ(hit->u, 0.25f);
    EXPECT_FLOAT_EQ(hit->v, 0.25f);

    ray.origin = {0.9f, 0.9f, 1}; // outside u+v <= 1
    EXPECT_FALSE(rayTriangle(ray, v0, v1, v2).has_value());

    ray.origin = {0.25f, 0.25f, 1};
    ray.dir = {1, 0, 0}; // parallel to the plane
    EXPECT_FALSE(rayTriangle(ray, v0, v1, v2).has_value());
}

TEST(RaySphere, EntryAndInside)
{
    Ray ray;
    ray.origin = {-5, 0, 0};
    ray.dir = {1, 0, 0};
    auto t = raySphere(ray, {0, 0, 0}, 1.0f);
    ASSERT_TRUE(t.has_value());
    EXPECT_FLOAT_EQ(*t, 4.0f);

    // Origin inside the sphere: the exit point is returned.
    ray.origin = {0, 0, 0};
    auto exit = raySphere(ray, {0, 0, 0}, 1.0f);
    ASSERT_TRUE(exit.has_value());
    EXPECT_FLOAT_EQ(*exit, 1.0f);

    ray.origin = {-5, 3, 0}; // misses
    EXPECT_FALSE(raySphere(ray, {0, 0, 0}, 1.0f).has_value());
}

TEST(PointDistance, Algorithm2Semantics)
{
    EXPECT_TRUE(pointWithinRadius({0, 0, 0}, {1, 0, 0}, 1.5f));
    EXPECT_FALSE(pointWithinRadius({0, 0, 0}, {2, 0, 0}, 1.5f));
    // Strict inequality, like Algorithm 2's (dis2 < threshold2).
    EXPECT_FALSE(pointWithinRadius({0, 0, 0}, {1, 0, 0}, 1.0f));
    EXPECT_FLOAT_EQ(distanceSquared({1, 2, 3}, {4, 6, 3}), 25.0f);
}

TEST(QueryKey, Algorithm1Reference)
{
    float keys[9] = {2, 4, 6, 8, 10, 12, 14, 16,
                     std::numeric_limits<float>::infinity()};
    auto hit = queryKeyCompare(8.0f, keys, 9);
    EXPECT_TRUE(hit.found);
    EXPECT_EQ(hit.matchIndex, 3);

    auto miss = queryKeyCompare(7.0f, keys, 9);
    EXPECT_FALSE(miss.found);
    EXPECT_EQ(miss.child, 3); // first key greater than the query

    auto below = queryKeyCompare(1.0f, keys, 9);
    EXPECT_EQ(below.child, 0);
    auto above = queryKeyCompare(100.0f, keys, 9);
    EXPECT_EQ(above.child, 8); // +inf sentinel catches it
}

// Property sweep: ray-box results are consistent under ray offsetting —
// if a ray hits at [tenter, texit], the same ray advanced by s hits at
// [tenter - s, texit - s] (while it still starts outside).
class RayBoxProperty : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(RayBoxProperty, TranslationConsistency)
{
    Rng rng(GetParam());
    for (int iter = 0; iter < 200; ++iter) {
        Aabb box;
        box.extend({rng.uniform(-5, 5), rng.uniform(-5, 5),
                    rng.uniform(-5, 5)});
        box.extend({rng.uniform(-5, 5), rng.uniform(-5, 5),
                    rng.uniform(-5, 5)});
        Ray ray;
        ray.origin = {rng.uniform(-20, -10), rng.uniform(-5, 5),
                      rng.uniform(-5, 5)};
        ray.dir = normalize({rng.uniform(0.2f, 1), rng.uniform(-1, 1),
                             rng.uniform(-1, 1)});
        auto hit = rayBox(ray, box);
        if (!hit || hit->tenter < 1.0f)
            continue;
        float s = hit->tenter * 0.5f;
        Ray moved = ray;
        moved.origin = ray.at(s);
        auto hit2 = rayBox(moved, box);
        ASSERT_TRUE(hit2.has_value());
        EXPECT_NEAR(hit2->tenter, hit->tenter - s,
                    1e-3f * (1.0f + hit->tenter));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RayBoxProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// Property sweep: a hit reported by rayTriangle always reconstructs a
// point inside the triangle (barycentric validity).
class RayTriProperty : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(RayTriProperty, BarycentricReconstruction)
{
    Rng rng(GetParam());
    int hits = 0;
    for (int iter = 0; iter < 400; ++iter) {
        Vec3 v0(rng.uniform(-3, 3), rng.uniform(-3, 3), rng.uniform(2, 4));
        Vec3 v1 = v0 + Vec3(rng.uniform(0.5f, 2), rng.uniform(-1, 1), 0);
        Vec3 v2 = v0 + Vec3(rng.uniform(-1, 1), rng.uniform(0.5f, 2), 0);
        Ray ray;
        ray.origin = {rng.uniform(-3, 3), rng.uniform(-3, 3), 0};
        ray.dir = normalize(
            (v0 + v1 + v2) / 3.0f +
            Vec3(rng.uniform(-1, 1), rng.uniform(-1, 1), 0) * 0.5f -
            ray.origin);
        auto hit = rayTriangle(ray, v0, v1, v2);
        if (!hit)
            continue;
        ++hits;
        EXPECT_GE(hit->u, 0.0f);
        EXPECT_GE(hit->v, 0.0f);
        EXPECT_LE(hit->u + hit->v, 1.0f + 1e-5f);
        Vec3 reconstructed = v0 * (1.0f - hit->u - hit->v) + v1 * hit->u +
                             v2 * hit->v;
        Vec3 sample = ray.at(hit->t);
        EXPECT_NEAR(length(reconstructed - sample), 0.0f, 1e-3f);
    }
    EXPECT_GT(hits, 10); // the sweep actually exercised the hit path
}

INSTANTIATE_TEST_SUITE_P(Seeds, RayTriProperty,
                         ::testing::Values(11, 12, 13, 14));

// --- Batched SoA kernels ---------------------------------------------------
//
// Whatever backend geom/simd.hh selected (AVX2, SSE2, NEON, or the
// scalar fallback), every lane of the batch kernels must agree with the
// scalar reference functions bit-for-bit: same hit/miss decision and
// float-equal (==) distances — the sign of a zero is the only tolerated
// representation difference, and operator== already treats -0 == +0.
// The sweep leans on degenerate geometry: flat boxes (zero extent on an
// axis), inverted boxes (lo > hi, the invalid-Aabb sentinel shape),
// tiny boxes, and axis-parallel rays whose 1/0 slab math produces
// inf/NaN.

namespace {

/** One random box per lane, biased toward degenerate shapes. */
Aabb
randomLaneBox(Rng &rng)
{
    Aabb box;
    Vec3 a{rng.uniform(-8, 8), rng.uniform(-8, 8), rng.uniform(-8, 8)};
    switch (rng.nextBounded(5)) {
      case 0: { // flat: zero extent on one axis
          Vec3 b = a + Vec3{rng.uniform(0, 3), rng.uniform(0, 3),
                            rng.uniform(0, 3)};
          int axis = static_cast<int>(rng.nextBounded(3));
          (&b.x)[axis] = (&a.x)[axis];
          box.extend(a);
          box.extend(b);
          break;
      }
      case 1: { // inverted: lo > hi on every axis (never hit/contains)
          box.lo = a;
          box.hi = a - Vec3{rng.uniform(0.5f, 2), rng.uniform(0.5f, 2),
                            rng.uniform(0.5f, 2)};
          break;
      }
      case 2: { // tiny: sub-epsilon extent
          box.extend(a);
          box.extend(a + Vec3{1e-30f, 1e-30f, 1e-30f});
          break;
      }
      default: { // ordinary box
          box.extend(a);
          box.extend(a + Vec3{rng.uniform(0.1f, 4), rng.uniform(0.1f, 4),
                              rng.uniform(0.1f, 4)});
          break;
      }
    }
    return box;
}

WideBoxes
packBoxes(const Aabb boxes[8])
{
    WideBoxes wide;
    for (int i = 0; i < 8; ++i) {
        wide.lox[i] = boxes[i].lo.x;
        wide.loy[i] = boxes[i].lo.y;
        wide.loz[i] = boxes[i].lo.z;
        wide.hix[i] = boxes[i].hi.x;
        wide.hiy[i] = boxes[i].hi.y;
        wide.hiz[i] = boxes[i].hi.z;
    }
    return wide;
}

} // namespace

class SimdBatchProperty : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(SimdBatchProperty, RayBoxBatchMatchesScalarLaneForLane)
{
    Rng rng(GetParam() * 1013904223ull + 1);
    for (int iter = 0; iter < 300; ++iter) {
        Aabb boxes[8];
        for (auto &box : boxes)
            box = randomLaneBox(rng);
        WideBoxes wide = packBoxes(boxes);

        Ray ray;
        ray.origin = {rng.uniform(-12, 12), rng.uniform(-12, 12),
                      rng.uniform(-12, 12)};
        ray.dir = {rng.uniform(-1, 1), rng.uniform(-1, 1),
                   rng.uniform(-1, 1)};
        // A third of the rays are axis-parallel in at least one axis.
        if (rng.nextBounded(3) == 0)
            (&ray.dir.x)[rng.nextBounded(3)] = 0.0f;
        if (rng.nextBounded(4) == 0)
            ray.tmax = rng.uniform(0.5f, 10.0f);

        int count = 1 + static_cast<int>(rng.nextBounded(8));
        float tenter[8];
        uint32_t mask = rayBoxBatch(ray, wide, count, tenter);
        ASSERT_EQ(mask >> count, 0u) << "lanes beyond count leaked";
        for (int i = 0; i < count; ++i) {
            auto hit = rayBox(ray, boxes[i]);
            ASSERT_EQ((mask >> i) & 1u, hit.has_value() ? 1u : 0u)
                << "iter " << iter << " lane " << i;
            if (hit)
                ASSERT_EQ(tenter[i], hit->tenter)
                    << "iter " << iter << " lane " << i;
        }
    }
}

TEST_P(SimdBatchProperty, PointInBoxBatchMatchesContains)
{
    Rng rng(GetParam() * 2654435761ull + 7);
    for (int iter = 0; iter < 300; ++iter) {
        Aabb boxes[8];
        for (auto &box : boxes)
            box = randomLaneBox(rng);
        WideBoxes wide = packBoxes(boxes);
        Vec3 p{rng.uniform(-10, 10), rng.uniform(-10, 10),
               rng.uniform(-10, 10)};
        // Occasionally place the point exactly on a lane's face to pin
        // the inclusive (>= / <=) boundary semantics.
        if (rng.nextBounded(3) == 0)
            p.x = boxes[rng.nextBounded(8)].lo.x;

        int count = 1 + static_cast<int>(rng.nextBounded(8));
        uint32_t mask = pointInBoxBatch(p, wide, count);
        ASSERT_EQ(mask >> count, 0u);
        for (int i = 0; i < count; ++i) {
            ASSERT_EQ((mask >> i) & 1u, boxes[i].contains(p) ? 1u : 0u)
                << "iter " << iter << " lane " << i;
        }
    }
}

TEST_P(SimdBatchProperty, RectOverlapBatchMatchesScalarOverlaps)
{
    Rng rng(GetParam() * 6364136223846793005ull + 13);
    for (int iter = 0; iter < 300; ++iter) {
        tta::trees::Rect2D rects[8];
        WideRects wide;
        for (int i = 0; i < 8; ++i) {
            float x = rng.uniform(-50, 50), y = rng.uniform(-50, 50);
            float w = rng.nextBounded(4) == 0 ? 0.0f
                                              : rng.uniform(0.1f, 6.0f);
            float h = rng.nextBounded(4) == 0 ? 0.0f
                                              : rng.uniform(0.1f, 6.0f);
            rects[i] = {x, y, x + w, y + h};
            if (rng.nextBounded(8) == 0) // inverted (empty) rectangle
                std::swap(rects[i].x0, rects[i].x1);
            wide.x0[i] = rects[i].x0;
            wide.y0[i] = rects[i].y0;
            wide.x1[i] = rects[i].x1;
            wide.y1[i] = rects[i].y1;
        }
        float qx = rng.uniform(-50, 50), qy = rng.uniform(-50, 50);
        tta::trees::Rect2D query{qx, qy, qx + rng.uniform(0, 8),
                                 qy + rng.uniform(0, 8)};
        // Shared-edge queries pin the inclusive boundary semantics.
        if (rng.nextBounded(3) == 0)
            query.x0 = rects[rng.nextBounded(8)].x1;

        int count = 1 + static_cast<int>(rng.nextBounded(8));
        uint32_t mask = rectOverlapBatch(query.x0, query.y0, query.x1,
                                         query.y1, wide, count);
        ASSERT_EQ(mask >> count, 0u);
        for (int i = 0; i < count; ++i) {
            ASSERT_EQ((mask >> i) & 1u,
                      query.overlaps(rects[i]) ? 1u : 0u)
                << "iter " << iter << " lane " << i;
        }
    }
}

TEST_P(SimdBatchProperty, PointRadiusBatchMatchesScalarDistance)
{
    Rng rng(GetParam() * 40503ull + 19);
    for (int iter = 0; iter < 300; ++iter) {
        alignas(32) float px[8], py[8], pz[8];
        Vec3 pts[8];
        for (int i = 0; i < 8; ++i) {
            pts[i] = {rng.uniform(-10, 10), rng.uniform(-10, 10),
                      rng.uniform(-10, 10)};
            px[i] = pts[i].x;
            py[i] = pts[i].y;
            pz[i] = pts[i].z;
        }
        Vec3 q{rng.uniform(-10, 10), rng.uniform(-10, 10),
               rng.uniform(-10, 10)};
        if (rng.nextBounded(6) == 0)
            q = pts[rng.nextBounded(8)]; // exact-zero distance lane
        float threshold = rng.uniform(0.0f, 12.0f);

        int count = 1 + static_cast<int>(rng.nextBounded(8));
        float d2[8];
        uint32_t mask = pointRadiusBatch(q, px, py, pz, count, threshold,
                                         d2);
        ASSERT_EQ(mask >> count, 0u);
        for (int i = 0; i < count; ++i) {
            ASSERT_EQ((mask >> i) & 1u,
                      pointWithinRadius(q, pts[i], threshold) ? 1u : 0u)
                << "iter " << iter << " lane " << i;
            ASSERT_EQ(d2[i], distanceSquared(q, pts[i]))
                << "iter " << iter << " lane " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimdBatchProperty,
                         ::testing::Values(31, 32, 33, 34, 35));
