/**
 * @file
 * N-Body simulation: several Barnes-Hut timesteps with the force pass on
 * the accelerator and the integration on the general-purpose cores —
 * including the paper's kernel-fusion mode where the two overlap
 * (Section V-A).
 *
 * Usage: ./examples/nbody_sim [n_bodies] [n_steps]
 */

#include <cstdio>
#include <cstdlib>

#include "workloads/nbody_workload.hh"

using namespace tta;
using workloads::NBodyWorkload;
using workloads::RunMetrics;

int
main(int argc, char **argv)
{
    size_t n_bodies = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4096;
    int n_steps = argc > 2 ? std::atoi(argv[2]) : 3;

    std::printf("Barnes-Hut N-Body: %zu bodies (3D, theta=0.75), "
                "%d timesteps per configuration\n\n", n_bodies, n_steps);

    struct Mode
    {
        const char *name;
        sim::AccelMode accel;
        bool fused;
    };
    const Mode modes[] = {
        {"CUDA baseline (cores only)", sim::AccelMode::BaselineGpu, false},
        {"TTA  (traversal offloaded)", sim::AccelMode::Tta, false},
        {"TTA+ (force in OP units)", sim::AccelMode::TtaPlus, false},
        {"TTA+ fused (overlapped)", sim::AccelMode::TtaPlus, true},
    };

    double base_total = 0.0;
    for (const Mode &mode : modes) {
        // Each timestep rebuilds the tree from the previous positions in
        // a real code; here each step re-runs force + integration on the
        // same tree, which is the portion the paper accelerates.
        uint64_t total_cycles = 0;
        double total_energy = 0.0;
        for (int step = 0; step < n_steps; ++step) {
            NBodyWorkload wl(3, n_bodies,
                             /*seed=*/1000 + step);
            sim::Config cfg;
            cfg.accelMode = mode.accel;
            sim::StatRegistry stats;
            RunMetrics m = mode.accel == sim::AccelMode::BaselineGpu
                ? wl.runBaseline(cfg, stats)
                : wl.runAccelerated(cfg, stats, mode.fused);
            total_cycles += m.cycles;
            total_energy += m.energy.total();
        }
        if (base_total == 0.0)
            base_total = static_cast<double>(total_cycles);
        std::printf("%-28s %12llu cycles  %8.1f uJ  %6.2fx\n", mode.name,
                    static_cast<unsigned long long>(total_cycles),
                    total_energy * 1e6, base_total / total_cycles);
    }

    std::printf("\nForce results are verified per step against the host "
                "Barnes-Hut reference (bit-comparable FP32 math).\n");
    return 0;
}
