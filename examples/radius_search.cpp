/**
 * @file
 * Point-cloud radius search (the RTNN use case): find all neighbors
 * within a radius for a batch of query points over a LiDAR-like cloud,
 * on every hardware level — including the paper's *RTNN configuration
 * that replaces the intersection shaders with the TTA's Point-to-Point
 * units.
 *
 * Usage: ./examples/radius_search [n_points] [n_queries] [radius_mm]
 */

#include <cstdio>
#include <cstdlib>

#include "workloads/rtnn_workload.hh"

using namespace tta;
using workloads::RtnnWorkload;
using workloads::RunMetrics;

int
main(int argc, char **argv)
{
    size_t n_points = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 32768;
    size_t n_queries =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4096;
    float radius = argc > 3 ? std::atof(argv[3]) / 1000.0f : 1.0f;

    std::printf("Radius search: %zu-point LiDAR-like cloud, %zu queries, "
                "radius %.2fm\n", n_points, n_queries, radius);

    RtnnWorkload wl(n_points, n_queries, radius, /*seed=*/7);

    // A peek at the data: neighbor counts around actual cloud points.
    std::printf("sample neighbor counts: ");
    for (int q = 0; q < 6; ++q) {
        const geom::Vec3 &p = wl.index().bvh().worldBox().center();
        std::printf("%zu ",
                    wl.index()
                        .query({p.x + 3.0f * q - 9.0f, p.y + 2.0f * q,
                                0.2f})
                        .size());
    }
    std::printf("\n\n%-22s %12s %10s\n", "configuration", "cycles",
                "speedup");

    sim::Config base_cfg;
    sim::StatRegistry base_stats;
    RunMetrics cuda = wl.runBaseline(base_cfg, base_stats);
    std::printf("%-22s %12llu %9.2fx\n", "CUDA (SIMT cores)",
                static_cast<unsigned long long>(cuda.cycles), 1.0);

    struct Cfg
    {
        const char *name;
        sim::AccelMode mode;
        bool offload;
    };
    for (const Cfg &c :
         {Cfg{"RTNN on the RTA", sim::AccelMode::BaselineRta, false},
          Cfg{"RTNN on TTA", sim::AccelMode::Tta, false},
          Cfg{"*RTNN on TTA", sim::AccelMode::Tta, true},
          Cfg{"RTNN on TTA+", sim::AccelMode::TtaPlus, false},
          Cfg{"*RTNN on TTA+", sim::AccelMode::TtaPlus, true}}) {
        sim::Config cfg;
        cfg.accelMode = c.mode;
        sim::StatRegistry stats;
        RunMetrics m = wl.runAccelerated(cfg, stats, c.offload);
        std::printf("%-22s %12llu %9.2fx\n", c.name,
                    static_cast<unsigned long long>(m.cycles),
                    static_cast<double>(cuda.cycles) / m.cycles);
    }

    std::printf("\nStarred (*) runs execute the leaf distance checks in "
                "the repurposed Ray-Triangle / OP units instead of SM "
                "intersection shaders. All neighbor counts are verified "
                "against a brute-force-checked host index.\n");
    return 0;
}
