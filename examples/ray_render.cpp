/**
 * @file
 * Render a procedural scene through the simulated RTA and write a PPM
 * depth image — the classic "is the tracer actually tracing" eyeball
 * check, plus a hardware-level comparison.
 *
 * Usage: ./examples/ray_render [scene] [res] [out.ppm]
 *   scene: cornell | sponza | ship | teapot | wknd | mask
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <vector>

#include "workloads/raytracing_workload.hh"

using namespace tta;
using namespace ::tta::workloads;

int
main(int argc, char **argv)
{
    const char *scene_name = argc > 1 ? argv[1] : "teapot";
    uint32_t res = argc > 2 ? std::atoi(argv[2]) : 96;
    const char *out_path = argc > 3 ? argv[3] : "render.ppm";

    SceneKind kind = SceneKind::TeapotRf;
    if (!std::strcmp(scene_name, "cornell"))
        kind = SceneKind::CornellPt;
    else if (!std::strcmp(scene_name, "sponza"))
        kind = SceneKind::SponzaAo;
    else if (!std::strcmp(scene_name, "ship"))
        kind = SceneKind::ShipSh;
    else if (!std::strcmp(scene_name, "wknd"))
        kind = SceneKind::WkndPt;
    else if (!std::strcmp(scene_name, "mask"))
        kind = SceneKind::MaskAm;

    RayTracingWorkload workload(kind, res, res, /*seed=*/3);
    std::printf("Scene %s: %zu primitives, %zu rays across the ray "
                "waves (%s BVH)\n",
                sceneName(kind),
                workload.scene().geometry().primitiveCount(),
                workload.totalRays(),
                workload.scene().geometry().twoLevel() ? "two-level"
                                                       : "single-level");

    // Trace everything on the simulated RTA; the run verifies every ray
    // against the host reference before returning.
    sim::Config cfg;
    cfg.accelMode = sim::AccelMode::BaselineRta;
    sim::StatRegistry stats;
    RunMetrics m = workload.runAccelerated(cfg, stats);
    std::printf("RTA traced everything in %llu cycles (%llu node visits, "
                "%llu intersection-shader calls)\n",
                static_cast<unsigned long long>(m.cycles),
                static_cast<unsigned long long>(m.nodesVisited),
                static_cast<unsigned long long>(
                    stats.counterValue("shader.calls")));

    // And once more on TTA+ to show the programmable path agrees.
    sim::Config tp_cfg;
    tp_cfg.accelMode = sim::AccelMode::TtaPlus;
    sim::StatRegistry tp_stats;
    RunMetrics tp = workload.runAccelerated(tp_cfg, tp_stats);
    std::printf("TTA+ reproduced identical hits in %llu cycles "
                "(%.2fx the RTA)\n",
                static_cast<unsigned long long>(tp.cycles),
                static_cast<double>(tp.cycles) / m.cycles);

    std::vector<uint8_t> pixels(static_cast<size_t>(res) * res, 0);
    float tmin = 0.0f, tmax = 0.0f;
    workload.renderDepth(pixels.data(), &tmin, &tmax);

    std::ofstream ppm(out_path, std::ios::binary);
    ppm << "P5\n" << res << " " << res << "\n255\n";
    ppm.write(reinterpret_cast<const char *>(pixels.data()),
              static_cast<std::streamsize>(pixels.size()));
    std::printf("wrote %s (%ux%u, hit depth range %.2f..%.2f)\n",
                out_path, res, res, tmin, tmax);
    return 0;
}
