/**
 * @file
 * Quickstart: accelerate a B-Tree index search with the TTA in ~40 lines
 * of user code.
 *
 * Mirrors the paper's Listing 1 flow:
 *   1. describe the data layouts (DecodeR / DecodeI / DecodeL),
 *   2. install the intersection-test programs (ConfigI / ConfigL),
 *   3. create the pipeline and bind it to a device,
 *   4. launch with cmdTraverseTree.
 *
 * Build & run:  ./examples/quickstart
 */

#include <cstdio>

#include "api/tta_api.hh"
#include "workloads/btree_workload.hh"

using namespace tta;

int
main()
{
    // A device with one TTA per SM (Table II configuration).
    sim::Config cfg;
    cfg.accelMode = sim::AccelMode::Tta;
    sim::StatRegistry stats;
    api::TtaDevice device(cfg, stats);

    // A 9-wide B-Tree with 100k keys (the even numbers 2..200000),
    // serialized into simulated GPU memory, plus 10k random queries.
    workloads::BTreeWorkload workload(trees::BTreeKind::BTree,
                                      100000, 10000, /*seed=*/42);
    workload.setup(device.memory());

    // Listing 1: layouts + intersection programs + termination.
    api::TtaPipeline pipeline = workloads::BTreeWorkload::makePipeline();

    // The functional spec behind the configured programs (query-key
    // comparison against the serialized node layout).
    // setup() placed the tree at a known root; the workload provides a
    // ready-made spec via runAccelerated, but we drive the API manually
    // here to show the flow.
    std::printf("Tree: %zu keys, %zu nodes, height %u\n",
                workload.tree().numKeys(), workload.tree().numNodes(),
                workload.tree().height());

    sim::StatRegistry run_stats;
    workloads::RunMetrics accel = workload.runAccelerated(cfg, run_stats);
    std::printf("TTA traversal: %llu cycles, %llu nodes visited, "
                "all 10000 results verified against the host reference\n",
                static_cast<unsigned long long>(accel.cycles),
                static_cast<unsigned long long>(accel.nodesVisited));

    sim::Config base_cfg; // BaselineGpu
    sim::StatRegistry base_stats;
    workloads::RunMetrics base = workload.runBaseline(base_cfg, base_stats);
    std::printf("CUDA-style baseline: %llu cycles (%0.2fx slower), "
                "%llu dynamic instructions vs %llu\n",
                static_cast<unsigned long long>(base.cycles),
                static_cast<double>(base.cycles) / accel.cycles,
                static_cast<unsigned long long>(base.totalInsts()),
                static_cast<unsigned long long>(accel.totalInsts()));
    std::printf("\nThat's the paper's pitch: one traverseTreeTTA "
                "instruction replaces the whole divergent loop.\n");
    return 0;
}
