/**
 * @file
 * Database index scenario: a point-lookup workload against B-Tree
 * variants — the paper's motivating application (Section I).
 *
 * Simulates an order-lookup service: an index over order ids, a query
 * stream with a configurable hit rate, and a comparison of the three
 * hardware levels on latency, throughput and energy.
 *
 * Usage: ./examples/db_index [n_keys] [n_queries]
 */

#include <cstdio>
#include <cstdlib>

#include "workloads/btree_workload.hh"

using namespace tta;
using workloads::BTreeWorkload;
using workloads::RunMetrics;

int
main(int argc, char **argv)
{
    size_t n_keys = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;
    size_t n_queries =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20000;

    std::printf("Order-lookup service: %zu-key index, %zu point "
                "queries (70%% hit rate)\n\n", n_keys, n_queries);
    std::printf("%-8s %-6s %12s %14s %12s %10s\n", "index", "hw",
                "cycles", "queries/ms", "energy(uJ)", "speedup");

    for (auto kind : {trees::BTreeKind::BTree, trees::BTreeKind::BStarTree,
                      trees::BTreeKind::BPlusTree}) {
        BTreeWorkload wl(kind, n_keys, n_queries, /*seed=*/2026, 0.7);

        sim::Config base_cfg;
        sim::StatRegistry base_stats;
        RunMetrics base = wl.runBaseline(base_cfg, base_stats);

        auto report = [&](const char *hw, const RunMetrics &m) {
            double ms = m.cycles / (1365e6 / 1e3); // 1365 MHz core clock
            std::printf("%-8s %-6s %12llu %14.0f %12.1f %9.2fx\n",
                        trees::bTreeKindName(kind), hw,
                        static_cast<unsigned long long>(m.cycles),
                        n_queries / ms, m.energy.total() * 1e6,
                        static_cast<double>(base.cycles) / m.cycles);
        };
        report("GPU", base);

        sim::Config tta_cfg;
        tta_cfg.accelMode = sim::AccelMode::Tta;
        sim::StatRegistry tta_stats;
        report("TTA", wl.runAccelerated(tta_cfg, tta_stats));

        sim::Config tp_cfg;
        tp_cfg.accelMode = sim::AccelMode::TtaPlus;
        sim::StatRegistry tp_stats;
        report("TTA+", wl.runAccelerated(tp_cfg, tp_stats));
    }

    std::printf("\nEvery run re-validates all query results against the "
                "host-side reference search.\n");
    return 0;
}
